package vault

import (
	"bytes"
	"errors"
	"testing"

	"nymix/internal/nymerr"
	"nymix/internal/nymstate"
)

// fuzzSeedCorpus is the seed corpus for the chunker fuzzers: empty
// and tiny inputs, boundary-straddling sizes, low-entropy runs the
// rolling hash never fires on, and pseudo-random bytes that exercise
// real content-defined cuts.
func fuzzSeedCorpus(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello, vault"))
	f.Add(bytes.Repeat([]byte{0}, MinChunk-1))
	f.Add(bytes.Repeat([]byte{0xAA}, MinChunk+1))
	f.Add(bytes.Repeat([]byte("abcd"), MaxChunk/4+17))
	f.Add(bytes.Repeat([]byte{0xFF}, 3*MaxChunk))
	// Deterministic pseudo-random content (splitmix64, same generator
	// idiom as the buzhash table) long enough for several cuts.
	rndData := make([]byte, 5*MaxChunk+13)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range rndData {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		rndData[i] = byte(z ^ (z >> 31))
	}
	f.Add(rndData)
}

// FuzzCutReal pins the CDC chunker's contract for arbitrary inputs:
// boundaries are deterministic (the same bytes always cut the same
// way — the property content addressing and dedup stand on),
// reassembling the chunks reproduces the input byte-for-byte, and
// every chunk respects the size bounds (MaxChunk always; MinChunk for
// all but a short tail).
func FuzzCutReal(f *testing.F) {
	fuzzSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		chunks := cutReal(data)
		if len(data) == 0 {
			// An empty real file is still a real file: one empty chunk.
			if len(chunks) != 1 || len(chunks[0]) != 0 {
				t.Fatalf("empty input: got %d chunks", len(chunks))
			}
			return
		}
		var rejoined []byte
		for i, ch := range chunks {
			if len(ch) > MaxChunk {
				t.Fatalf("chunk %d is %d bytes, exceeds MaxChunk %d", i, len(ch), MaxChunk)
			}
			if i < len(chunks)-1 && len(data) > MinChunk && len(ch) < MinChunk {
				t.Fatalf("non-tail chunk %d is %d bytes, below MinChunk %d", i, len(ch), MinChunk)
			}
			rejoined = append(rejoined, ch...)
		}
		if !bytes.Equal(rejoined, data) {
			t.Fatalf("reassembly mismatch: %d bytes in, %d bytes out", len(data), len(rejoined))
		}
		// Boundary determinism: cutting the same bytes again must yield
		// identical boundaries.
		again := cutReal(append([]byte(nil), data...))
		if len(again) != len(chunks) {
			t.Fatalf("non-deterministic cut: %d chunks then %d", len(chunks), len(again))
		}
		for i := range chunks {
			if !bytes.Equal(chunks[i], again[i]) {
				t.Fatalf("non-deterministic boundary at chunk %d", i)
			}
		}
	})
}

// FuzzCutVirtual pins the virtual segmenter: segments sum to the file
// size, all full segments are VirtualChunkBytes, and only the tail
// may be short.
func FuzzCutVirtual(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(VirtualChunkBytes))
	f.Add(int64(VirtualChunkBytes + 1))
	f.Add(int64(10*VirtualChunkBytes - 1))
	f.Fuzz(func(t *testing.T, size int64) {
		if size < 0 || size > 1<<40 {
			t.Skip()
		}
		segs := cutVirtual(size)
		var sum int64
		for i, s := range segs {
			if s <= 0 || s > VirtualChunkBytes {
				t.Fatalf("segment %d has size %d", i, s)
			}
			if i < len(segs)-1 && s != VirtualChunkBytes {
				t.Fatalf("non-tail segment %d is %d bytes", i, s)
			}
			sum += s
		}
		if sum != size {
			t.Fatalf("segments sum to %d, want %d", sum, size)
		}
	})
}

// fuzzRand is a deterministic nonce source for the manifest fuzzers:
// splitmix64 over a seed derived from the input, so every fuzz case is
// reproducible.
type fuzzRand struct{ state uint64 }

func (r *fuzzRand) Bytes(b []byte) {
	for i := range b {
		r.state += 0x9e3779b97f4a7c15
		z := r.state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		b[i] = byte(z ^ (z >> 31))
	}
}

// failsClosedTyped asserts a manifest-open failure carries one of the
// vault's registered tamper codes: whatever bytes an attacker (or a
// bit-rotting provider) hands back, the vault refuses with a typed
// vault.bad_password or vault.tampered, never a success and never an
// unclassified error.
func failsClosedTyped(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("corrupted manifest opened successfully")
	}
	code := nymerr.Classify(err)
	if code != CodeBadPassword && code != CodeTampered {
		t.Fatalf("corrupted manifest failed with code %q, want %s or %s (err: %v)",
			code, CodeBadPassword, CodeTampered, err)
	}
}

// FuzzSealManifest round-trips arbitrary manifests through
// sealManifest/openManifest and then attacks the sealed blob:
// truncations and bit flips must fail closed with a typed code, and
// the untouched blob must decode back to the identical manifest.
func FuzzSealManifest(f *testing.F) {
	f.Add("alice", "pw", 3, "state/browser.db", uint64(7), 64)
	f.Add("bob", "", 0, "", uint64(1), 0)
	f.Add("nym-with-long-name-0123456789", "p@ss\x00word", 9999, "a/b/c/d", uint64(42), 1000)
	f.Fuzz(func(t *testing.T, name, password string, seq int, path string, seed uint64, flip int) {
		man := &Manifest{
			Name: name, Model: "persistent", Cycles: seq % 7, Seq: seq,
			AnonDiskName: "anon.img", CommDiskName: "comm.img",
			AnonState: map[string]string{"guard": name, "path": path},
			Files:     []FileEntry{{Path: path, Real: true, VirtualSize: int64(seq)}},
		}
		ks := deriveKeys(password, name)
		blob, err := sealManifest(man, ks, &fuzzRand{state: seed})
		if err != nil {
			t.Fatalf("seal: %v", err)
		}
		got, err := openManifest(blob.Data, password, name)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if got.Name != man.Name || got.Seq != man.Seq || got.AnonState["path"] != path {
			t.Fatalf("round trip mutated the manifest: %+v != %+v", got, man)
		}
		if len(got.Files) != 1 || got.Files[0].Path != path {
			t.Fatalf("round trip dropped files: %+v", got.Files)
		}

		// Wrong password fails closed as vault.bad_password.
		_, err = openManifest(blob.Data, password+"x", name)
		if nymerr.Classify(err) != CodeBadPassword {
			t.Fatalf("wrong password classified %q, want %s", nymerr.Classify(err), CodeBadPassword)
		}
		if !errors.Is(err, nymstate.ErrBadPassword) {
			t.Fatalf("wrong password lost the nymstate.ErrBadPassword sentinel: %v", err)
		}

		// Every truncation fails closed with a typed code.
		for _, n := range []int{0, 1, len(blob.Data) / 2, len(blob.Data) - 1} {
			if n >= len(blob.Data) {
				continue
			}
			_, err := openManifest(blob.Data[:n], password, name)
			failsClosedTyped(t, err)
		}

		// A single flipped bit anywhere fails closed with a typed code.
		mut := append([]byte(nil), blob.Data...)
		i := flip
		if i < 0 {
			i = -i
		}
		i %= len(mut)
		mut[i] ^= 1 << (uint(flip) % 8)
		_, err = openManifest(mut, password, name)
		failsClosedTyped(t, err)
	})
}

// FuzzOpenManifest hands openManifest arbitrary bytes: it must never
// panic and never succeed-by-accident silently — any failure carries
// a typed vault.bad_password or vault.tampered code.
func FuzzOpenManifest(f *testing.F) {
	fuzzSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		man, err := openManifest(data, "fuzz-pw", "fuzz-nym")
		if err != nil {
			failsClosedTyped(t, err)
			return
		}
		// Authenticating arbitrary bytes under a fixed key would be a
		// GCM forgery; if it ever happens we want the corpus entry.
		t.Fatalf("arbitrary bytes authenticated as a manifest: %+v", man)
	})
}
