package vault

import "nymix/internal/nymerr"

// Registered error codes for the vault layer. Lower-layer sentinels
// (nymstate.ErrBadPassword, merkle.ErrTampered) stay in the wrap
// chain for errors.Is compatibility; the vault code is what Classify
// and the SLO report see.
var (
	// CodeBadPassword: a manifest exists but the password cannot
	// authenticate it.
	CodeBadPassword = nymerr.Register("vault.bad_password",
		"manifest exists but the password cannot authenticate it")
	// CodeTampered: a sealed blob failed authentication or an
	// authenticated structure is internally inconsistent — the vault
	// fails closed on any of it.
	CodeTampered = nymerr.Register("vault.tampered",
		"sealed blob failed authentication or committed structure is inconsistent")
	// CodeNoManifest: no checkpoint exists for the nym at any provider.
	CodeNoManifest = nymerr.Register("vault.no_manifest",
		"no checkpoint manifest exists at any reachable provider")
	// CodeNoSessions: the caller supplied no provider sessions.
	CodeNoSessions = nymerr.Register("vault.no_sessions",
		"vault operation invoked with zero provider sessions")
	// CodeChunkMissing: the manifest references a chunk no provider
	// delivered.
	CodeChunkMissing = nymerr.Register("vault.chunk_missing",
		"manifest references a chunk no provider delivered")
	// CodeBadChunkName: a stored blob name does not parse as a chunk
	// address.
	CodeBadChunkName = nymerr.Register("vault.bad_chunk_name",
		"stored blob name does not parse as a chunk address")
	// CodeManifestProbe: the manifest could not even be looked for —
	// every provider holding one failed the fetch, so "no manifest"
	// cannot be concluded.
	CodeManifestProbe = nymerr.Register("vault.manifest_probe",
		"manifest fetch failed at every provider holding one; absence unproven")
)

// Errors: typed sentinels kept as errors.Is targets for existing
// callers.
var (
	// ErrNoManifest means no checkpoint exists for the nym at any of
	// the given providers.
	ErrNoManifest = nymerr.New(CodeNoManifest, "vault: no manifest found")
	// ErrNoSessions means the caller supplied no provider sessions.
	ErrNoSessions = nymerr.New(CodeNoSessions, "vault: no provider sessions")
)
