package vault

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/anonnet/incognito"
	"nymix/internal/cloud"
	"nymix/internal/merkle"
	"nymix/internal/nymerr"
	"nymix/internal/nymstate"
	"nymix/internal/sim"
	"nymix/internal/unionfs"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// rig wires an anonymizer in front of two cloud providers, mirroring
// the topology the nym manager builds: CommVM -> masquerading host ->
// gateway -> Internet -> providers.
type rig struct {
	eng       *sim.Engine
	providers []*cloud.Provider
	relay     *incognito.Relay
}

func newRig(t *testing.T, quota int64) *rig {
	t.Helper()
	eng := sim.NewEngine(71)
	net, world := webworld.BuildDefault(eng)
	comm := net.AddNode("commvm")
	host := net.AddNode("host").SetForwarding(true).SetMasquerade(true)
	net.Connect(comm, host, vnet.LinkConfig{Latency: 200 * time.Microsecond, Capacity: 500e6})
	net.Connect(host, world.Gateway(), webworld.UplinkConfig)
	cfg := vnet.LinkConfig{Latency: 2 * time.Millisecond, Capacity: 1e9 / 8}
	r := &rig{eng: eng}
	for _, name := range []string{"dropbin", "gdrive"} {
		pr := cloud.NewProvider(net, world.Internet(), name, quota, cfg)
		pr.CreateAccount("acct", "cpw")
		r.providers = append(r.providers, pr)
	}
	r.relay = incognito.New(net, "commvm", "host", world.ISPDNS().Name(), world.Resolver())
	return r
}

// run executes fn as a sim process and drains the engine, with the
// relay started and sessions to n providers opened.
func (r *rig) run(t *testing.T, n int, fn func(p *sim.Proc, sessions []*cloud.Session)) {
	t.Helper()
	r.eng.Go("test", func(p *sim.Proc) {
		r.relay.Start(p)
		var sessions []*cloud.Session
		for _, pr := range r.providers[:n] {
			sess, err := cloud.Login(p, r.relay, pr, "acct", "cpw")
			if err != nil {
				t.Errorf("login %s: %v", pr.Name(), err)
				return
			}
			sessions = append(sessions, sess)
		}
		fn(p, sessions)
	})
	r.eng.Run()
}

// patternBytes yields deterministic, chunkable content.
func patternBytes(seed uint64, n int) []byte {
	rnd := sim.NewRand(seed)
	b := make([]byte, n)
	rnd.Bytes(b)
	return b
}

// testState builds a representative nym state: small real files, a
// multi-chunk real file, virtual bulk content, and whiteouts.
func testState(name string) *nymstate.State {
	return &nymstate.State{
		Name:   name,
		Model:  "persistent",
		Cycles: 3,
		AnonDisk: unionfs.Image{
			Name: "anon/writable",
			Files: map[string]unionfs.FileImage{
				"/home/user/.mozilla/cookies": {Real: true, Data: []byte("twitter=abc; gmail=def")},
				"/home/user/history":          {Real: true, Data: patternBytes(7, 100<<10)},
				"/home/user/empty":            {Real: true, Data: []byte{}},
				"/home/user/.cache/browser":   {VirtualSize: 9<<20 + 137, Entropy: 0.93},
			},
			Whiteouts: []string{"/tmp/removed"},
		},
		CommDisk: unionfs.Image{
			Name: "comm/writable",
			Files: map[string]unionfs.FileImage{
				"/var/lib/anonymizer/guard":            {Real: true, Data: []byte("relay-7")},
				"/var/lib/anonymizer/cached-consensus": {VirtualSize: 2200 << 10, Entropy: 0.62},
			},
		},
		AnonState: map[string]string{"guard": "relay-7", "consensus": "cached"},
	}
}

func mustEqualState(t *testing.T, want, got *nymstate.State) {
	t.Helper()
	if got == nil {
		t.Fatal("no state restored")
	}
	if got.Name != want.Name || got.Model != want.Model || got.Cycles != want.Cycles {
		t.Fatalf("header mismatch: got %q/%q/%d want %q/%q/%d",
			got.Name, got.Model, got.Cycles, want.Name, want.Model, want.Cycles)
	}
	if !reflect.DeepEqual(want.AnonDisk, got.AnonDisk) {
		t.Fatalf("AnonDisk differs:\nwant %+v\ngot  %+v", want.AnonDisk, got.AnonDisk)
	}
	if !reflect.DeepEqual(want.CommDisk, got.CommDisk) {
		t.Fatalf("CommDisk differs:\nwant %+v\ngot  %+v", want.CommDisk, got.CommDisk)
	}
	if !reflect.DeepEqual(map[string]string(want.AnonState), map[string]string(got.AnonState)) {
		t.Fatalf("AnonState differs: want %v got %v", want.AnonState, got.AnonState)
	}
}

func TestCutRealCoversInputExactly(t *testing.T) {
	for _, n := range []int{0, 1, MinChunk, MinChunk + 1, 10 << 10, 200 << 10} {
		data := patternBytes(uint64(n)+1, n)
		chunks := cutReal(data)
		var joined []byte
		for _, c := range chunks {
			joined = append(joined, c...)
			if len(c) > MaxChunk {
				t.Fatalf("n=%d: chunk of %d bytes exceeds MaxChunk", n, len(c))
			}
		}
		if !bytes.Equal(joined, data) {
			t.Fatalf("n=%d: chunks do not reassemble input", n)
		}
		if n == 0 && len(chunks) != 1 {
			t.Fatalf("empty input: %d chunks, want 1 empty chunk", len(chunks))
		}
	}
}

func TestCutRealBoundariesSurviveShift(t *testing.T) {
	// The content-defined property: prepending bytes must not reshape
	// chunks far from the edit. Compare chunk sets, not positions.
	base := patternBytes(99, 300<<10)
	shifted := append(append([]byte(nil), patternBytes(17, 1000)...), base...)
	seen := make(map[string]bool)
	for _, c := range cutReal(base) {
		seen[string(c)] = true
	}
	reused := 0
	for _, c := range cutReal(shifted) {
		if seen[string(c)] {
			reused++
		}
	}
	if reused < len(cutReal(base))/2 {
		t.Fatalf("only %d/%d chunks survived a prefix shift", reused, len(cutReal(base)))
	}
}

func TestRoundTripByteIdentical(t *testing.T) {
	r := newRig(t, 0)
	st := testState("alice")
	vs := NewStore("alice", Replicate, nil)
	r.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		if _, err := vs.Save(p, st, "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		got, stats, err := vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		mustEqualState(t, st, got)
		if stats.Chunks == 0 || stats.DownloadedBytes == 0 {
			t.Errorf("load stats empty: %+v", stats)
		}
	})
}

func TestEmptyState(t *testing.T) {
	r := newRig(t, 0)
	st := &nymstate.State{
		Name:     "blank",
		Model:    "persistent",
		AnonDisk: unionfs.Image{Name: "anon/writable", Files: map[string]unionfs.FileImage{}},
		CommDisk: unionfs.Image{Name: "comm/writable", Files: map[string]unionfs.FileImage{}},
	}
	vs := NewStore("blank", Replicate, nil)
	r.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		stats, err := vs.Save(p, st, "pw", sessions, r.eng.Rand())
		if err != nil {
			t.Errorf("save empty: %v", err)
			return
		}
		if stats.TotalChunks != 0 {
			t.Errorf("empty state produced %d chunks", stats.TotalChunks)
		}
		got, _, err := vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load empty: %v", err)
			return
		}
		mustEqualState(t, st, got)
	})
}

func TestSingleChunkState(t *testing.T) {
	r := newRig(t, 0)
	st := &nymstate.State{
		Name:  "tiny",
		Model: "persistent",
		AnonDisk: unionfs.Image{Name: "anon/writable", Files: map[string]unionfs.FileImage{
			"/note": {Real: true, Data: []byte("just one small file")},
		}},
		CommDisk: unionfs.Image{Name: "comm/writable", Files: map[string]unionfs.FileImage{}},
	}
	vs := NewStore("tiny", Replicate, nil)
	r.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		stats, err := vs.Save(p, st, "pw", sessions, r.eng.Rand())
		if err != nil {
			t.Errorf("save: %v", err)
			return
		}
		if stats.TotalChunks != 1 || stats.NewChunks != 1 {
			t.Errorf("stats = %+v, want exactly one chunk", stats)
		}
		got, _, err := vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		mustEqualState(t, st, got)
	})
}

func TestWrongPasswordOnManifest(t *testing.T) {
	r := newRig(t, 0)
	vs := NewStore("alice", Replicate, nil)
	r.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		if _, err := vs.Save(p, testState("alice"), "right", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		_, _, err := vs.Load(p, "wrong", sessions)
		if !errors.Is(err, nymstate.ErrBadPassword) {
			t.Errorf("wrong password: %v, want ErrBadPassword", err)
		}
	})
}

// flakyAnon wraps a working anonymizer and, once down, fails every
// exchange — a circuit collapse between login and fetch.
type flakyAnon struct {
	anonnet.Anonymizer
	down bool
}

func (f *flakyAnon) Fetch(p *sim.Proc, req anonnet.Request) (anonnet.FetchResult, error) {
	if f.down {
		return anonnet.FetchResult{}, errors.New("anonymizer circuit collapsed")
	}
	return f.Anonymizer.Fetch(p, req)
}

// Regression: a provider that HAS a manifest but cannot serve it used
// to read as "no manifest anywhere" — an anonymizer outage during the
// probe was reported as a fresh nym (and could feed GC an empty live
// set). The probe failure is now its own typed code.
func TestManifestProbeOutageIsNotNoManifest(t *testing.T) {
	r := newRig(t, 0)
	vs := NewStore("alice", Replicate, nil)
	r.eng.Go("test", func(p *sim.Proc) {
		r.relay.Start(p)
		flaky := &flakyAnon{Anonymizer: r.relay}
		sess, err := cloud.Login(p, flaky, r.providers[0], "acct", "cpw")
		if err != nil {
			t.Errorf("login: %v", err)
			return
		}
		sessions := []*cloud.Session{sess}
		if _, err := vs.Save(p, testState("alice"), "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		flaky.down = true
		_, _, err = vs.Load(p, "pw", sessions)
		if err == nil {
			t.Error("load succeeded through a dead anonymizer")
			return
		}
		if errors.Is(err, ErrNoManifest) {
			t.Errorf("outage misclassified as no-manifest: %v", err)
		}
		if nymerr.Classify(err) != CodeManifestProbe {
			t.Errorf("classified %q, want %s: %v", nymerr.Classify(err), CodeManifestProbe, err)
		}
	})
	r.eng.Run()
}

func TestTamperedChunkFailsMerkleVerification(t *testing.T) {
	r := newRig(t, 0)
	vs := NewStore("alice", Replicate, nil)
	r.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		sess := sessions[0]
		if _, err := vs.Save(p, testState("alice"), "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		// The provider (or anyone who seizes the account) flips bytes
		// in one stored real chunk.
		tampered := 0
		for _, name := range sess.List() {
			if !strings.HasPrefix(name, vs.chunkPrefix()) {
				continue
			}
			blob, err := sess.Get(p, name)
			if err != nil || len(blob.Data) == 0 {
				continue // virtual chunk: no stored bytes
			}
			blob.Data[0] ^= 0xff
			if err := sess.Put(p, name, blob); err != nil {
				t.Errorf("tamper put: %v", err)
				return
			}
			tampered++
			break
		}
		if tampered == 0 {
			t.Error("no real chunk found to tamper")
			return
		}
		_, _, err := vs.Load(p, "pw", sessions)
		if !errors.Is(err, merkle.ErrTampered) {
			t.Errorf("tampered chunk load: %v, want merkle.ErrTampered", err)
		}
	})
}

func TestDeltaSaveUploadsOnlyChangedChunks(t *testing.T) {
	r := newRig(t, 0)
	st := testState("alice")
	vs := NewStore("alice", Replicate, nil)
	r.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		first, err := vs.Save(p, st, "pw", sessions, r.eng.Rand())
		if err != nil {
			t.Errorf("save 1: %v", err)
			return
		}
		if first.NewChunks != first.TotalChunks {
			t.Errorf("first save uploaded %d of %d chunks", first.NewChunks, first.TotalChunks)
		}

		// Session 2: cookies change, the cache grows, entropy drifts a
		// little (the GrowVirtual re-mix) — interior segments must keep
		// their addresses.
		st2 := testState("alice")
		st2.AnonDisk.Files["/home/user/.mozilla/cookies"] = unionfs.FileImage{Real: true, Data: []byte("twitter=xyz; gmail=def")}
		st2.AnonDisk.Files["/home/user/.cache/browser"] = unionfs.FileImage{VirtualSize: 10 << 20, Entropy: 0.928}
		second, err := vs.Save(p, st2, "pw", sessions, r.eng.Rand())
		if err != nil {
			t.Errorf("save 2: %v", err)
			return
		}
		if second.NewChunks == 0 || second.NewChunks >= second.TotalChunks/2 {
			t.Errorf("second save uploaded %d of %d chunks, want a small delta", second.NewChunks, second.TotalChunks)
		}
		if second.UploadedBytes*4 > first.UploadedBytes {
			t.Errorf("second save shipped %d bytes vs first %d, want <25%%", second.UploadedBytes, first.UploadedBytes)
		}
		if second.DedupFrac() < 0.75 {
			t.Errorf("dedup fraction = %.2f, want >= 0.75", second.DedupFrac())
		}

		// Unchanged third save: only the manifest moves.
		third, err := vs.Save(p, st2, "pw", sessions, r.eng.Rand())
		if err != nil {
			t.Errorf("save 3: %v", err)
			return
		}
		if third.NewChunks != 0 {
			t.Errorf("unchanged save uploaded %d chunks", third.NewChunks)
		}
		if third.UploadedBytes != third.ManifestBytes {
			t.Errorf("unchanged save shipped %d bytes beyond the manifest", third.UploadedBytes-third.ManifestBytes)
		}

		// The restored state is the latest one.
		got, _, err := vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		mustEqualState(t, st2, got)
	})
}

func TestColdIndexFallsBackToProviderMetadata(t *testing.T) {
	// A fresh Store (fresh local index — e.g. the user moved to a new
	// machine) must still dedup against what the provider holds.
	r := newRig(t, 0)
	st := testState("alice")
	r.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		if _, err := NewStore("alice", Replicate, nil).Save(p, st, "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save 1: %v", err)
			return
		}
		cold := NewStore("alice", Replicate, nil)
		stats, err := cold.Save(p, st, "pw", sessions, r.eng.Rand())
		if err != nil {
			t.Errorf("save 2: %v", err)
			return
		}
		if stats.NewChunks != 0 {
			t.Errorf("cold-index save re-uploaded %d chunks", stats.NewChunks)
		}
	})
}

func TestGCKeepsEverythingTheLatestManifestReferences(t *testing.T) {
	r := newRig(t, 0)
	vs := NewStore("alice", Replicate, nil)
	r.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		st := testState("alice")
		st.AnonDisk.Files["/home/user/scratch"] = unionfs.FileImage{Real: true, Data: patternBytes(3, 64<<10)}
		if _, err := vs.Save(p, st, "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save 1: %v", err)
			return
		}
		// GC with nothing stale: nothing may be deleted.
		stats, err := vs.GC(p, "pw", sessions)
		if err != nil {
			t.Errorf("gc 1: %v", err)
			return
		}
		if stats.Deleted != 0 {
			t.Errorf("gc deleted %d live chunks", stats.Deleted)
		}

		// The scratch file goes away; its chunks become garbage.
		st2 := testState("alice")
		if _, err := vs.Save(p, st2, "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save 2: %v", err)
			return
		}
		stats, err = vs.GC(p, "pw", sessions)
		if err != nil {
			t.Errorf("gc 2: %v", err)
			return
		}
		if stats.Deleted == 0 || stats.FreedBytes == 0 {
			t.Errorf("gc reclaimed nothing: %+v", stats)
		}
		// Everything the latest manifest needs is intact.
		got, _, err := vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load after gc: %v", err)
			return
		}
		mustEqualState(t, st2, got)
		// And a delta save after GC does not resurrect-upload live chunks.
		again, err := vs.Save(p, st2, "pw", sessions, r.eng.Rand())
		if err != nil {
			t.Errorf("save 3: %v", err)
			return
		}
		if again.NewChunks != 0 {
			t.Errorf("post-gc save re-uploaded %d chunks", again.NewChunks)
		}
	})
}

func TestStripePartitionsAcrossProviders(t *testing.T) {
	r := newRig(t, 0)
	st := testState("alice")
	vs := NewStore("alice", Stripe, nil)
	r.run(t, 2, func(p *sim.Proc, sessions []*cloud.Session) {
		stats, err := vs.Save(p, st, "pw", sessions, r.eng.Rand())
		if err != nil {
			t.Errorf("save: %v", err)
			return
		}
		counts := make([]int, 2)
		for si, sess := range sessions {
			for _, name := range sess.List() {
				if strings.HasPrefix(name, vs.chunkPrefix()) {
					counts[si]++
				}
			}
			if !sess.Has(vs.manifestBlobName()) {
				t.Errorf("provider %d missing the manifest", si)
			}
		}
		if counts[0]+counts[1] != stats.TotalChunks {
			t.Errorf("stripe holds %d+%d chunks, want %d total", counts[0], counts[1], stats.TotalChunks)
		}
		if counts[0] == 0 || counts[1] == 0 {
			t.Errorf("degenerate stripe: %v", counts)
		}
		got, _, err := vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		mustEqualState(t, st, got)
	})
}

func TestGCWrongPasswordReportsBadPassword(t *testing.T) {
	r := newRig(t, 0)
	vs := NewStore("alice", Replicate, nil)
	r.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		if _, err := vs.Save(p, testState("alice"), "right", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		if _, err := vs.GC(p, "wrong", sessions); !errors.Is(err, nymstate.ErrBadPassword) {
			t.Errorf("gc with wrong password: %v, want ErrBadPassword (not a bogus 'no manifest')", err)
		}
	})
}

func TestStripeLossInvalidatesIndexAndRecovers(t *testing.T) {
	// A striped partition holder that loses data must be detected by
	// the failed load and re-provisioned by the next save, exactly
	// like the replicate path.
	r := newRig(t, 0)
	st := testState("alice")
	vs := NewStore("alice", Stripe, nil)
	r.run(t, 2, func(p *sim.Proc, sessions []*cloud.Session) {
		if _, err := vs.Save(p, st, "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		// Provider 1 loses its chunk partition (keeps the manifest).
		for _, name := range sessions[1].List() {
			if strings.HasPrefix(name, vs.chunkPrefix()) {
				if err := sessions[1].Delete(name); err != nil {
					t.Errorf("wipe: %v", err)
					return
				}
			}
		}
		if _, _, err := vs.Load(p, "pw", sessions); err == nil {
			t.Error("load should fail with a lost stripe partition")
			return
		}
		// The failed load invalidated the stale index: saving again
		// restores the partition, and the restore works.
		if _, err := vs.Save(p, st, "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("re-save: %v", err)
			return
		}
		got, _, err := vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load after re-save: %v", err)
			return
		}
		mustEqualState(t, st, got)
	})
}

func TestReplicateSurvivesProviderLoss(t *testing.T) {
	r := newRig(t, 0)
	st := testState("alice")
	vs := NewStore("alice", Replicate, nil)
	r.run(t, 2, func(p *sim.Proc, sessions []*cloud.Session) {
		if _, err := vs.Save(p, st, "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		// Provider 0 wipes the account (takedown, data loss).
		for _, name := range sessions[0].List() {
			if err := sessions[0].Delete(name); err != nil {
				t.Errorf("wipe: %v", err)
				return
			}
		}
		got, _, err := vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load after provider loss: %v", err)
			return
		}
		mustEqualState(t, st, got)
		// Regression: the load must not have marked the wiped provider
		// as holding chunks it no longer has — the next save has to
		// re-replicate there, restoring the any-single-provider
		// guarantee.
		stats, err := vs.Save(p, st, "pw", sessions, r.eng.Rand())
		if err != nil {
			t.Errorf("save after provider loss: %v", err)
			return
		}
		if stats.NewChunks != stats.TotalChunks {
			t.Errorf("re-replication uploaded %d of %d chunks to the wiped provider", stats.NewChunks, stats.TotalChunks)
		}
		if _, _, err := vs.Load(p, "pw", sessions[:1]); err != nil {
			t.Errorf("wiped provider not restored to self-sufficiency: %v", err)
		}
	})
}

func TestLoadAndGCPreferNewestManifest(t *testing.T) {
	// A provider serving a rolled-back (older) manifest must not win:
	// the restore takes the highest sequence number across providers,
	// and GC's live set comes from that newest manifest — never
	// deleting chunks an older copy no longer references.
	r := newRig(t, 0)
	st1 := testState("alice")
	st1.Cycles = 1
	st2 := testState("alice")
	st2.Cycles = 2
	st2.AnonDisk.Files["/home/user/notes"] = unionfs.FileImage{Real: true, Data: []byte("session-two secrets")}
	vs := NewStore("alice", Replicate, nil)
	r.run(t, 2, func(p *sim.Proc, sessions []*cloud.Session) {
		if _, err := vs.Save(p, st1, "pw", sessions, r.eng.Rand()); err != nil {
			t.Errorf("save 1: %v", err)
			return
		}
		// The second save only reaches provider 1 (provider 0 is stale
		// or maliciously rolled back to the seq-1 state).
		if _, err := vs.Save(p, st2, "pw", sessions[1:], r.eng.Rand()); err != nil {
			t.Errorf("save 2: %v", err)
			return
		}
		got, _, err := vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		mustEqualState(t, st2, got)
		// GC across both providers must keep every chunk the newest
		// manifest references; the nym must still restore afterwards.
		if _, err := vs.GC(p, "pw", sessions); err != nil {
			t.Errorf("gc: %v", err)
			return
		}
		got, _, err = vs.Load(p, "pw", sessions)
		if err != nil {
			t.Errorf("load after gc: %v", err)
			return
		}
		mustEqualState(t, st2, got)
	})
}

func TestBatchTransfersBeatPerBlobRoundTrips(t *testing.T) {
	// The reason internal/cloud grew PutBatch/GetBatch: a chunk fan-out
	// through a high-latency anonymizer must not pay one round trip per
	// chunk. Save the same state both ways and compare elapsed time.
	rBatch := newRig(t, 0)
	st := testState("alice")
	var batched time.Duration
	vs := NewStore("alice", Replicate, nil)
	rBatch.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		start := p.Now()
		stats, err := vs.Save(p, st, "pw", sessions, rBatch.eng.Rand())
		if err != nil {
			t.Errorf("save: %v", err)
			return
		}
		batched = time.Duration(p.Now() - start)
		if stats.TotalChunks < 10 {
			t.Errorf("workload too small to exercise batching: %d chunks", stats.TotalChunks)
		}
	})

	rSerial := newRig(t, 0)
	var serial time.Duration
	rSerial.run(t, 1, func(p *sim.Proc, sessions []*cloud.Session) {
		ks := deriveKeys("pw", "alice")
		gcm, err := ks.aead()
		if err != nil {
			t.Errorf("aead: %v", err)
			return
		}
		c := chunkState(st, ks)
		NewStore("alice", Replicate, nil).priceChunks(&c, nil)
		start := p.Now()
		for _, ref := range c.refs {
			blob := cloud.Blob{WireSize: ref.WireSize}
			if !ref.Virtual {
				blob.Data = ks.sealChunk(gcm, ref.Addr, c.data[ref.Addr])
			}
			if err := sessions[0].Put(p, "serial-"+ref.Addr.String(), blob); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		serial = time.Duration(p.Now() - start)
	})
	if batched >= serial {
		t.Fatalf("batched save (%v) not faster than per-chunk puts (%v)", batched, serial)
	}
}
