package vault

import (
	"bytes"
	"compress/gzip"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"nymix/internal/cloud"
	"nymix/internal/merkle"
	"nymix/internal/nymerr"
	"nymix/internal/nymstate"
	"nymix/internal/sim"
	"nymix/internal/unionfs"
)

// gob wire type IDs come from a process-global registry in
// first-encode order and are varint-encoded into every stream, so a
// manifest's byte length would depend on encode history. nymstate
// (imported above, so its init runs first) pins its wire types;
// pinning manifestWire here fixes the combined assignment order in
// every binary, making blob sizes a pure function of content.
func init() {
	if err := gob.NewEncoder(io.Discard).Encode(&manifestWire{}); err != nil {
		panic(err)
	}
}

// Addr is a keyed content address: HMAC-SHA256 over a chunk's content
// identity under the nym's addressing key.
type Addr [sha256.Size]byte

// String returns the hex form used in blob names.
func (a Addr) String() string { return hex.EncodeToString(a[:]) }

// Placement selects how chunk sets map onto multiple providers.
type Placement int

const (
	// Replicate stores every chunk at every provider: any single
	// surviving provider can restore the nym.
	Replicate Placement = iota
	// Stripe partitions chunks across providers by address, cutting
	// per-provider footprint to ~1/N; the manifest is still replicated
	// everywhere, but a restore needs all providers reachable.
	Stripe
)

// String names the placement.
func (pl Placement) String() string {
	if pl == Stripe {
		return "stripe"
	}
	return "replicate"
}

// ChunkRef is one chunk as the manifest records it.
type ChunkRef struct {
	Addr     Addr
	Virtual  bool
	Size     int64   // logical bytes
	Entropy  float64 // virtual chunks: compressibility of the content
	WireSize int64   // modeled stored/transferred size of the sealed blob
}

// FileEntry maps one file of a disk image onto the chunk list.
type FileEntry struct {
	Disk        int // 0 = AnonDisk, 1 = CommDisk
	Path        string
	Real        bool
	VirtualSize int64
	Entropy     float64
	Chunks      []int // indexes into Manifest.Chunks, in file order
}

// Manifest is the vault's only mutable object: everything needed to
// rebuild a nym state from the chunk store, sealed under the nym
// password. Root commits to the chunk list so a restore can verify
// each fetched chunk's address against a Merkle proof.
type Manifest struct {
	Name          string
	Model         string
	Cycles        int
	Seq           int // save-cycle sequence number of this manifest
	AnonDiskName  string
	CommDiskName  string
	AnonWhiteouts []string
	CommWhiteouts []string
	AnonState     map[string]string
	Files         []FileEntry
	Chunks        []ChunkRef
	Root          merkle.Hash
}

// keys is the per-nym vault key material derived from the password:
// one key for sealing chunks and the manifest, one for addressing.
type keys struct {
	enc []byte
	mac []byte
}

func deriveKeys(password, name string) keys {
	raw := nymstate.DeriveKey([]byte(password), []byte("nymix-vault-v1\x00"+name), nymstate.KDFIterations, 64)
	return keys{enc: raw[:32], mac: raw[32:]}
}

// chunkSealOverhead is the stored per-chunk overhead: the 16-byte GCM
// tag (the nonce is derived from the address, never stored).
const chunkSealOverhead = 16

// realAddr addresses a real chunk by its bytes.
func (ks keys) realAddr(data []byte) Addr {
	mac := hmac.New(sha256.New, ks.mac)
	mac.Write([]byte("real\x00"))
	mac.Write(data)
	var a Addr
	copy(a[:], mac.Sum(nil))
	return a
}

// virtAddr addresses a virtual segment by (disk, path, segment index,
// segment size). Entropy is deliberately NOT part of the address: a
// virtual file's entropy is a lossy aggregate that unionfs.GrowVirtual
// re-mixes on every append, while the bytes an interior segment stands
// for did not change — real content-defined chunking would keep their
// addresses stable, so the vault does too. Entropy still restores
// exactly (it rides in the sealed manifest's FileEntry) and prices the
// segment's wire size; only the dedup identity ignores it.
func (ks keys) virtAddr(disk int, path string, seg int, size int64) Addr {
	mac := hmac.New(sha256.New, ks.mac)
	mac.Write([]byte("virt\x00"))
	mac.Write([]byte{byte(disk)})
	mac.Write([]byte(path))
	var meta [16]byte
	binary.BigEndian.PutUint64(meta[0:8], uint64(seg))
	binary.BigEndian.PutUint64(meta[8:16], uint64(size))
	mac.Write(meta[:])
	var a Addr
	copy(a[:], mac.Sum(nil))
	return a
}

// sealChunk encrypts a real chunk convergently: AES-256-GCM with the
// nonce derived from the address, so identical content always yields
// an identical blob. The AEAD is hoisted by the caller (one per
// Save/Load, not one per chunk).
func (ks keys) sealChunk(gcm cipher.AEAD, addr Addr, data []byte) []byte {
	return gcm.Seal(nil, ks.chunkNonce(addr, gcm.NonceSize()), data, addr[:])
}

// openChunk decrypts and authenticates a real chunk blob. Because the
// manifest already authenticated under the password, a failure here is
// tamper evidence, reported as merkle.ErrTampered.
func (ks keys) openChunk(gcm cipher.AEAD, addr Addr, blob []byte) ([]byte, error) {
	plain, err := gcm.Open(nil, ks.chunkNonce(addr, gcm.NonceSize()), blob, addr[:])
	if err != nil {
		return nil, nymerr.Wrapf(CodeTampered, merkle.ErrTampered, "chunk %s", addr)
	}
	return plain, nil
}

func (ks keys) aead() (cipher.AEAD, error) {
	block, err := aes.NewCipher(ks.enc)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

func (ks keys) chunkNonce(addr Addr, n int) []byte {
	mac := hmac.New(sha256.New, ks.mac)
	mac.Write([]byte("nonce\x00"))
	mac.Write(addr[:])
	return mac.Sum(nil)[:n]
}

// Index is the per-nym local cache of which chunk addresses each
// provider is known to hold, and at what wire size. It lets a delta
// save decide what to upload without a provider round trip (a cold
// index falls back to the provider's own metadata listing), and lets
// the cluster rebalancer price a migration — KnownBytes is the wire a
// destination restore would pull from that provider — without
// touching the providers at all.
type Index struct {
	present map[string]map[Addr]int64
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{present: make(map[string]map[Addr]int64)}
}

// Has reports whether the provider is known to hold addr.
func (ix *Index) Has(provider string, a Addr) bool {
	_, ok := ix.present[provider][a]
	return ok
}

// Add records that the provider holds addr at the given wire size.
func (ix *Index) Add(provider string, a Addr, wireSize int64) {
	set, ok := ix.present[provider]
	if !ok {
		set = make(map[Addr]int64)
		ix.present[provider] = set
	}
	set[a] = wireSize
}

// Forget drops addr from the provider's set (after GC deletes it).
func (ix *Index) Forget(provider string, a Addr) {
	delete(ix.present[provider], a)
}

// Drop forgets everything cached about a provider. Called on evidence
// the provider lost data (a failed chunk fetch): keeping stale entries
// would make later delta saves skip re-uploading there and silently
// break the replication guarantee. Dropping is cheap — the next save
// falls back to per-chunk provider metadata, so chunks the provider
// does still hold are not re-shipped.
func (ix *Index) Drop(provider string) { delete(ix.present, provider) }

// Known returns how many chunks the index believes the provider holds.
func (ix *Index) Known(provider string) int { return len(ix.present[provider]) }

// KnownBytes returns the total wire size of the chunks the index
// believes the provider holds — what a restore served entirely by that
// provider would download, before the manifest and batch framing.
func (ix *Index) KnownBytes(provider string) int64 {
	var total int64
	for _, size := range ix.present[provider] {
		total += size
	}
	return total
}

// Store is a vault bound to one nym. Sessions are supplied per
// operation (each save or restore logs in through the nym's own
// anonymizer); their order must be stable across saves and loads of
// the same nym when striping, because stripe assignment is positional.
type Store struct {
	name      string
	placement Placement
	index     *Index
}

// NewStore returns a vault for the named nym. A nil index is replaced
// by a fresh one (every save then consults provider metadata).
func NewStore(name string, placement Placement, index *Index) *Store {
	if index == nil {
		index = NewIndex()
	}
	return &Store{name: name, placement: placement, index: index}
}

// Index exposes the store's chunk-presence cache.
func (v *Store) Index() *Index { return v.index }

// manifestBlobName is the per-nym manifest object.
func (v *Store) manifestBlobName() string { return "vault-" + v.name + ".manifest" }

// chunkBlobName is the stored name of one chunk.
func (v *Store) chunkBlobName(a Addr) string { return "vault-" + v.name + "-c-" + a.String() }

// chunkPrefix scopes provider listings to this nym's chunks.
func (v *Store) chunkPrefix() string { return "vault-" + v.name + "-c-" }

// assign maps a chunk address to its provider slot under striping.
func assign(a Addr, n int) int {
	return int(binary.BigEndian.Uint32(a[:4]) % uint32(n))
}

// SaveStats reports one delta save cycle.
type SaveStats struct {
	TotalChunks    int   // chunks in the manifest
	NewChunks      int   // chunk uploads performed (summed over providers)
	LogicalBytes   int64 // uncompressed state content the chunker consumed
	ChunkWireBytes int64 // wire size of the full chunk set (one copy)
	// ChunkUploadBytes is the chunk wire actually sent — including the
	// per-blob batch framing the transfer charges — summed over
	// providers. ColdChunkBytes is what a dedup-free save would have
	// sent to the same placement (N copies under Replicate, one
	// partitioned copy under Stripe), framed identically, so
	// DedupFrac compares like with like.
	ChunkUploadBytes int64
	ColdChunkBytes   int64
	UploadedBytes    int64 // total wire sent: framed chunk uploads + every manifest copy
	ManifestBytes    int64 // wire size of one sealed manifest
	// BaselineWireBytes is what a monolithic archive of the same state
	// would have shipped; filled by callers that price the comparison
	// (core.StoreNymVault), zero otherwise.
	BaselineWireBytes int64
}

// DedupFrac is the fraction of the placement's chunk wire that did NOT
// need uploading: 1 - ChunkUploadBytes/ColdChunkBytes.
func (s SaveStats) DedupFrac() float64 {
	if s.ColdChunkBytes == 0 {
		return 0
	}
	return 1 - float64(s.ChunkUploadBytes)/float64(s.ColdChunkBytes)
}

// chunked is the in-memory result of chunking a state.
type chunked struct {
	refs  []ChunkRef
	files []FileEntry
	data  map[Addr][]byte // plaintext of real chunks
}

// chunkState cuts both disk images into chunks, deduplicating within
// the state. Files are walked in sorted path order so the manifest is
// deterministic for identical content.
func chunkState(st *nymstate.State, ks keys) chunked {
	c := chunked{data: make(map[Addr][]byte)}
	seen := make(map[Addr]int)
	// mk builds the ChunkRef lazily: a duplicate occurrence (the same
	// segment appearing twice in the state) skips the gzip pricing
	// pass entirely.
	ref := func(addr Addr, mk func() ChunkRef) int {
		if i, ok := seen[addr]; ok {
			return i
		}
		i := len(c.refs)
		seen[addr] = i
		c.refs = append(c.refs, mk())
		return i
	}
	for disk, img := range []unionfs.Image{st.AnonDisk, st.CommDisk} {
		paths := make([]string, 0, len(img.Files))
		for p := range img.Files {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, path := range paths {
			f := img.Files[path]
			fe := FileEntry{Disk: disk, Path: path, Real: f.Real, VirtualSize: f.VirtualSize, Entropy: f.Entropy}
			// WireSize stays zero here: pricing is deferred to
			// priceChunks, which skips the gzip pass for every chunk a
			// provider already stores.
			if f.Real {
				for _, seg := range cutReal(f.Data) {
					addr := ks.realAddr(seg)
					fe.Chunks = append(fe.Chunks, ref(addr, func() ChunkRef {
						c.data[addr] = append([]byte(nil), seg...)
						return ChunkRef{Addr: addr, Size: int64(len(seg))}
					}))
				}
			} else {
				for i, n := range cutVirtual(f.VirtualSize) {
					addr := ks.virtAddr(disk, path, i, n)
					fe.Chunks = append(fe.Chunks, ref(addr, func() ChunkRef {
						return ChunkRef{Addr: addr, Virtual: true, Size: n, Entropy: f.Entropy}
					}))
				}
			}
			c.files = append(c.files, fe)
		}
	}
	return c
}

// priceChunks fills each ChunkRef's WireSize. A chunk some provider
// already stores is NOT re-uploaded, so it keeps the wire size it was
// priced at on first upload — adopting that stored size keeps the
// manifest, transfer charges, and provider accounting in one model
// even as a virtual file's aggregate entropy re-mixes (virtAddr
// deliberately ignores entropy to keep dedup working), and skips the
// gzip pricing pass for the steady-state majority of chunks. Absent
// chunks are priced fresh: gzip for real bytes, the entropy model for
// virtual content.
func (v *Store) priceChunks(c *chunked, sessions []*cloud.Session) {
	for i := range c.refs {
		r := &c.refs[i]
		name := v.chunkBlobName(r.Addr)
		stored := false
		for _, sess := range sessions {
			if size, ok := sess.Provider().BlobInfo(sess.User(), name); ok {
				r.WireSize = size
				stored = true
				break
			}
		}
		if stored {
			continue
		}
		if r.Virtual {
			r.WireSize = nymstate.VirtualWireSize(r.Size, r.Entropy) + chunkSealOverhead
		} else {
			r.WireSize = gzipLen(c.data[r.Addr]) + chunkSealOverhead
		}
	}
}

// gzipLen measures a chunk's compressed size exactly.
func gzipLen(data []byte) int64 {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(data)
	zw.Close()
	return int64(buf.Len())
}

// chunkLeaves converts the chunk list to Merkle leaves (the address is
// the content commitment; real chunks' addresses are keyed digests of
// their bytes, so the root transitively commits to all content).
func chunkLeaves(refs []ChunkRef) []merkle.Hash {
	leaves := make([]merkle.Hash, len(refs))
	for i, r := range refs {
		leaves[i] = merkle.Hash(r.Addr)
	}
	return leaves
}

// Save writes a delta checkpoint of st: chunks absent from each
// provider (per the local index, falling back to provider metadata)
// are uploaded in one batch per provider, then the sealed manifest is
// replaced everywhere. rnd supplies the manifest nonce.
func (v *Store) Save(p *sim.Proc, st *nymstate.State, password string, sessions []*cloud.Session, rnd nymstate.RandSource) (SaveStats, error) {
	if len(sessions) == 0 {
		return SaveStats{}, ErrNoSessions
	}
	ks := deriveKeys(password, v.name)
	gcm, err := ks.aead()
	if err != nil {
		return SaveStats{}, err
	}
	c := chunkState(st, ks)
	v.priceChunks(&c, sessions)
	man := &Manifest{
		Name:          st.Name,
		Model:         st.Model,
		Cycles:        st.Cycles,
		AnonDiskName:  st.AnonDisk.Name,
		CommDiskName:  st.CommDisk.Name,
		AnonWhiteouts: append([]string(nil), st.AnonDisk.Whiteouts...),
		CommWhiteouts: append([]string(nil), st.CommDisk.Whiteouts...),
		AnonState:     copyState(st.AnonState),
		Files:         c.files,
		Chunks:        c.refs,
		Root:          merkle.BuildHashes(chunkLeaves(c.refs)).Root(),
	}

	stats := SaveStats{
		TotalChunks:  len(c.refs),
		LogicalBytes: nymstate.LogicalSize(st),
	}
	for _, r := range c.refs {
		stats.ChunkWireBytes += r.WireSize
	}

	// Upload missing chunks, one batch per provider. Sealing is
	// memoized: convergent encryption yields the identical blob for
	// every replica, so a chunk is encrypted once no matter how many
	// providers receive it.
	sealed := make(map[Addr][]byte)
	for si, sess := range sessions {
		batch := make(map[string]cloud.Blob)
		var pendingChunks int
		var pendingWire int64
		for _, r := range c.refs {
			if v.placement == Stripe && len(sessions) > 1 && assign(r.Addr, len(sessions)) != si {
				continue
			}
			stats.ColdChunkBytes += r.WireSize + cloud.BatchFrameBytes
			provider := sess.Provider().Name()
			if v.index.Has(provider, r.Addr) {
				continue
			}
			name := v.chunkBlobName(r.Addr)
			if sess.Has(name) {
				v.index.Add(provider, r.Addr, r.WireSize)
				continue
			}
			blob := cloud.Blob{WireSize: r.WireSize}
			if !r.Virtual {
				ct, ok := sealed[r.Addr]
				if !ok {
					ct = ks.sealChunk(gcm, r.Addr, c.data[r.Addr])
					sealed[r.Addr] = ct
				}
				blob.Data = ct
			}
			batch[name] = blob
			pendingChunks++
			pendingWire += r.WireSize + cloud.BatchFrameBytes
		}
		if err := sess.PutBatch(p, batch); err != nil {
			// The batch is all-or-nothing: nothing pending was sent.
			return stats, fmt.Errorf("vault: save chunks: %w", err)
		}
		stats.NewChunks += pendingChunks
		stats.ChunkUploadBytes += pendingWire
		stats.UploadedBytes += pendingWire
		provider := sess.Provider().Name()
		for _, r := range c.refs {
			if _, ok := batch[v.chunkBlobName(r.Addr)]; ok {
				v.index.Add(provider, r.Addr, r.WireSize)
			}
		}
	}

	// Replace the manifest everywhere (the single mutable object). The
	// sequence number rides the state's own cycle counter — no extra
	// round trip to read back the previous manifest.
	man.Seq = st.Cycles
	blob, err := sealManifest(man, ks, rnd)
	if err != nil {
		return stats, err
	}
	stats.ManifestBytes = blob.WireSize
	for _, sess := range sessions {
		if err := sess.Put(p, v.manifestBlobName(), blob); err != nil {
			return stats, fmt.Errorf("vault: save manifest: %w", err)
		}
		stats.UploadedBytes += blob.WireSize
	}
	return stats, nil
}

// latestManifest fetches the manifest from EVERY reachable provider
// and keeps the highest sequence number. Taking the first copy that
// opens would let one stale or rolled-back provider silently win —
// restoring old state, or worse, feeding GC a live set that misses
// the newest chunks. It returns (nil, 0) when none exists or the
// password cannot open any (a fresh nym, or rotated credentials).
// The returned error distinguishes "no manifest anywhere" from "a
// manifest exists but the password cannot open it"; wire reports the
// manifest bytes downloaded while looking.
func (v *Store) latestManifest(p *sim.Proc, password string, sessions []*cloud.Session) (man *Manifest, wire int64, err error) {
	var best *Manifest
	var openErr, fetchErr error
	for _, sess := range sessions {
		if !sess.Has(v.manifestBlobName()) {
			continue
		}
		blob, err := sess.Get(p, v.manifestBlobName())
		if err != nil {
			// Do not swallow this: a provider that HAS a manifest but
			// cannot serve it is a reachability failure, not absence.
			fetchErr = err
			continue
		}
		wire += blob.WireSize
		m, err := openManifest(blob.Data, password, v.name)
		if err != nil {
			openErr = err
			continue
		}
		if best == nil || m.Seq > best.Seq {
			best = m
		}
	}
	if best == nil {
		if openErr != nil {
			return nil, wire, openErr
		}
		if fetchErr != nil {
			// Every provider holding a manifest failed its fetch:
			// reporting "no manifest" here would misclassify an outage
			// as a fresh nym (and could feed GC an empty live set).
			return nil, wire, nymerr.Wrap(CodeManifestProbe, fetchErr, "manifest probe").
				AddContext("nym", v.name)
		}
		return nil, wire, fmt.Errorf("%w: %q", ErrNoManifest, v.name)
	}
	return best, wire, nil
}

// LoadStats reports one restore.
type LoadStats struct {
	Chunks          int   // chunks fetched and verified
	DownloadedBytes int64 // wire bytes fetched: manifest + chunks
}

// Load fetches the manifest and every referenced chunk, verifies each
// chunk against the manifest's Merkle root, and rebuilds the state
// byte-identically. Under Replicate any single reachable provider
// suffices; under Stripe each provider serves its own partition.
func (v *Store) Load(p *sim.Proc, password string, sessions []*cloud.Session) (*nymstate.State, LoadStats, error) {
	var stats LoadStats
	if len(sessions) == 0 {
		return nil, stats, ErrNoSessions
	}
	ks := deriveKeys(password, v.name)
	gcm, err := ks.aead()
	if err != nil {
		return nil, stats, err
	}

	// Manifest: consult every reachable provider and restore the
	// highest sequence number, so a single stale or rolled-back
	// provider cannot silently win.
	man, manWire, err := v.latestManifest(p, password, sessions)
	stats.DownloadedBytes += manWire
	if err != nil {
		return nil, stats, err
	}

	// Invariant check: the chunk list must reproduce its committed
	// root. The manifest is already GCM-authenticated as a whole, so
	// this can only fail on an implementation bug in the save path —
	// it is a cheap cross-check, not the tamper defense. Chunk tamper
	// detection is the per-chunk address-bound seal below.
	if merkle.BuildHashes(chunkLeaves(man.Chunks)).Root() != man.Root {
		return nil, stats, nymerr.Wrap(CodeTampered, merkle.ErrTampered, "manifest chunk list")
	}

	// Fetch chunks in manifest order, batched per provider.
	plain := make(map[Addr][]byte)
	fetch := func(sess *cloud.Session, idxs []int) error {
		names := make([]string, len(idxs))
		for i, ci := range idxs {
			names[i] = v.chunkBlobName(man.Chunks[ci].Addr)
		}
		blobs, err := sess.GetBatch(p, names)
		if err != nil {
			return err
		}
		for i, ci := range idxs {
			if err := verifyChunk(ks, gcm, man.Chunks[ci], blobs[names[i]], plain); err != nil {
				return err
			}
			stats.Chunks++
			stats.DownloadedBytes += blobs[names[i]].WireSize + cloud.BatchFrameBytes
		}
		return nil
	}
	// served tracks which provider actually delivered which chunks:
	// only a fetch we verified is proof of presence.
	served := make(map[int][]int)
	if v.placement == Stripe && len(sessions) > 1 {
		parts := make([][]int, len(sessions))
		for ci, r := range man.Chunks {
			si := assign(r.Addr, len(sessions))
			parts[si] = append(parts[si], ci)
		}
		for si, idxs := range parts {
			if len(idxs) == 0 {
				continue
			}
			if err := fetch(sessions[si], idxs); err != nil {
				if !errors.Is(err, merkle.ErrTampered) {
					// The partition holder failed to serve: its index
					// entries are no longer evidence (same invalidation
					// as the replicate path), so a later save re-uploads
					// what it lost instead of trusting stale state.
					v.index.Drop(sessions[si].Provider().Name())
				}
				return nil, stats, fmt.Errorf("vault: load stripe %d: %w", si, err)
			}
			served[si] = idxs
		}
	} else {
		all := make([]int, len(man.Chunks))
		for i := range all {
			all[i] = i
		}
		var err error
		base := stats
		for si, sess := range sessions {
			stats = base // count only the attempt that succeeds
			if err = fetch(sess, all); err == nil {
				served[si] = all
				break
			}
			if errors.Is(err, merkle.ErrTampered) {
				return nil, stats, err // tampering is not a reachability problem
			}
			// This replica failed to serve the checkpoint: whatever the
			// index believed about it is no longer evidence.
			v.index.Drop(sess.Provider().Name())
		}
		if err != nil {
			return nil, stats, fmt.Errorf("vault: load chunks: %w", err)
		}
	}

	st, err := man.buildState(plain)
	if err != nil {
		return nil, stats, err
	}
	// Warm the index for the next delta save — but only with what this
	// load proved. A replica that failed its fetch (or was never asked)
	// may have lost data; assuming it still holds the chunks would make
	// the next save skip re-uploading there and quietly break the
	// replication guarantee.
	for si, idxs := range served {
		provider := sessions[si].Provider().Name()
		for _, ci := range idxs {
			v.index.Add(provider, man.Chunks[ci].Addr, man.Chunks[ci].WireSize)
		}
	}
	return st, stats, nil
}

// verifyChunk authenticates one fetched real chunk: it must decrypt
// under its address-bound seal and re-derive the same keyed address.
// Since the manifest (and so the expected address) is authenticated
// under the password, a failure here is tamper evidence. No Merkle
// membership proof is checked per chunk: the chunk list travels
// whole inside the sealed manifest, so a proof against the tree the
// list itself generates would verify nothing — proofs only earn
// their keep if a future partial-restore path fetches a chunk list
// subset from an untrusted intermediary.
func verifyChunk(ks keys, gcm cipher.AEAD, r ChunkRef, blob cloud.Blob, plain map[Addr][]byte) error {
	if r.Virtual {
		return nil // no bytes exist; identity is the manifest entry itself
	}
	data, err := ks.openChunk(gcm, r.Addr, blob.Data)
	if err != nil {
		return err
	}
	if ks.realAddr(data) != r.Addr {
		return nymerr.Wrapf(CodeTampered, merkle.ErrTampered, "chunk %s content mismatch", r.Addr)
	}
	plain[r.Addr] = data
	return nil
}

// buildState reassembles the nym state from the manifest and the
// decrypted real-chunk plaintexts.
func (man *Manifest) buildState(plain map[Addr][]byte) (*nymstate.State, error) {
	anon := unionfs.Image{Name: man.AnonDiskName, Files: make(map[string]unionfs.FileImage), Whiteouts: append([]string(nil), man.AnonWhiteouts...)}
	comm := unionfs.Image{Name: man.CommDiskName, Files: make(map[string]unionfs.FileImage), Whiteouts: append([]string(nil), man.CommWhiteouts...)}
	for _, fe := range man.Files {
		fi := unionfs.FileImage{Real: fe.Real, VirtualSize: fe.VirtualSize, Entropy: fe.Entropy}
		if fe.Real {
			var buf bytes.Buffer
			for _, ci := range fe.Chunks {
				if ci < 0 || ci >= len(man.Chunks) {
					return nil, nymerr.Wrapf(CodeTampered, merkle.ErrTampered, "chunk index %d out of range", ci)
				}
				data, ok := plain[man.Chunks[ci].Addr]
				if !ok {
					return nil, nymerr.Newf(CodeChunkMissing, "chunk %s", man.Chunks[ci].Addr).
						AddContext("file", fe.Path)
				}
				buf.Write(data)
			}
			// make (not append) so an empty real file keeps a non-nil
			// Data slice, exactly as unionfs.Layer.Export produces it.
			fi.Data = make([]byte, buf.Len())
			copy(fi.Data, buf.Bytes())
		}
		switch fe.Disk {
		case 0:
			anon.Files[fe.Path] = fi
		case 1:
			comm.Files[fe.Path] = fi
		default:
			return nil, nymerr.Wrapf(CodeTampered, merkle.ErrTampered, "file %q names disk %d", fe.Path, fe.Disk)
		}
	}
	return &nymstate.State{
		Name:      man.Name,
		Model:     man.Model,
		Cycles:    man.Cycles,
		AnonDisk:  anon,
		CommDisk:  comm,
		AnonState: copyState(man.AnonState),
	}, nil
}

// GCStats reports one garbage-collection pass.
type GCStats struct {
	Scanned    int   // chunk blobs examined across providers
	Deleted    int   // unreferenced chunk blobs removed
	FreedBytes int64 // wire bytes reclaimed
	// ManifestBytes is the wire downloaded probing providers for the
	// latest manifest — the pass's own wire cost (the opportunistic GC
	// scheduler budgets it against idle sweep slots).
	ManifestBytes int64
}

// GC removes chunks no longer referenced by the latest manifest from
// every provider. Chunks the latest manifest names are never touched.
// GC needs the password: the referenced set lives inside the sealed
// manifest.
func (v *Store) GC(p *sim.Proc, password string, sessions []*cloud.Session) (GCStats, error) {
	if len(sessions) == 0 {
		return GCStats{}, ErrNoSessions
	}
	man, manWire, err := v.latestManifest(p, password, sessions)
	if err != nil {
		return GCStats{ManifestBytes: manWire}, err
	}
	live := make(map[string]bool, len(man.Chunks))
	for _, r := range man.Chunks {
		live[v.chunkBlobName(r.Addr)] = true
	}
	stats := GCStats{ManifestBytes: manWire}
	for _, sess := range sessions {
		provider := sess.Provider().Name()
		for _, name := range sess.List() {
			if !strings.HasPrefix(name, v.chunkPrefix()) {
				continue
			}
			stats.Scanned++
			if live[name] {
				continue
			}
			if size, ok := sess.Provider().BlobInfo(sess.User(), name); ok {
				stats.FreedBytes += size
			}
			if err := sess.Delete(name); err != nil {
				return stats, err
			}
			stats.Deleted++
			if a, err := parseChunkName(v.chunkPrefix(), name); err == nil {
				v.index.Forget(provider, a)
			}
		}
	}
	return stats, nil
}

// parseChunkName recovers the address from a chunk blob name.
func parseChunkName(prefix, name string) (Addr, error) {
	var a Addr
	raw, err := hex.DecodeString(strings.TrimPrefix(name, prefix))
	if err != nil || len(raw) != len(a) {
		return a, nymerr.Newf(CodeBadChunkName, "%q", name)
	}
	copy(a[:], raw)
	return a, nil
}

// manifestWire is the gob form of a Manifest. The AnonState map is
// flattened to sorted pairs before encoding: gob writes maps in
// iteration order, which Go randomizes per run, and an
// order-dependent encoding would give the identical manifest a
// different gzipped wire size on every run.
type manifestWire struct {
	Name          string
	Model         string
	Cycles        int
	Seq           int
	AnonDiskName  string
	CommDiskName  string
	AnonWhiteouts []string
	CommWhiteouts []string
	AnonState     [][2]string // sorted by key
	Files         []FileEntry
	Chunks        []ChunkRef
	Root          merkle.Hash
}

// sealManifest serializes, compresses, and seals a manifest. The blob
// layout is nonce || ciphertext; the AAD binds the nym name so a
// manifest cannot be replayed under another nym.
func sealManifest(man *Manifest, ks keys, rnd nymstate.RandSource) (cloud.Blob, error) {
	wireForm := manifestWire{
		Name: man.Name, Model: man.Model, Cycles: man.Cycles, Seq: man.Seq,
		AnonDiskName: man.AnonDiskName, CommDiskName: man.CommDiskName,
		AnonWhiteouts: man.AnonWhiteouts, CommWhiteouts: man.CommWhiteouts,
		AnonState: nymstate.FlattenStateMap(man.AnonState),
		Files:     man.Files, Chunks: man.Chunks, Root: man.Root,
	}
	var plainBuf bytes.Buffer
	zw := gzip.NewWriter(&plainBuf)
	if err := gob.NewEncoder(zw).Encode(&wireForm); err != nil {
		return cloud.Blob{}, fmt.Errorf("vault: encode manifest: %w", err)
	}
	if err := zw.Close(); err != nil {
		return cloud.Blob{}, err
	}
	gcm, err := ks.aead()
	if err != nil {
		return cloud.Blob{}, err
	}
	nonce := make([]byte, gcm.NonceSize())
	rnd.Bytes(nonce)
	ct := gcm.Seal(nil, nonce, plainBuf.Bytes(), []byte("manifest\x00"+man.Name))
	data := append(nonce, ct...)
	return cloud.Blob{Data: data, WireSize: int64(len(data))}, nil
}

// openManifest reverses sealManifest; a wrong password fails
// authentication with nymstate.ErrBadPassword.
func openManifest(data []byte, password, name string) (*Manifest, error) {
	ks := deriveKeys(password, name)
	gcm, err := ks.aead()
	if err != nil {
		return nil, err
	}
	if len(data) <= gcm.NonceSize() {
		// A blob too short to even carry a nonce is a damaged or
		// truncated store, not a password problem.
		return nil, nymerr.Wrap(CodeTampered, nymstate.ErrBadArchive, "manifest truncated").
			AddContext("bytes", len(data))
	}
	plain, err := gcm.Open(nil, data[:gcm.NonceSize()], data[gcm.NonceSize():], []byte("manifest\x00"+name))
	if err != nil {
		// GCM cannot distinguish a wrong key from flipped ciphertext
		// bits; either way the vault fails closed without state.
		return nil, nymerr.Wrap(CodeBadPassword, nymstate.ErrBadPassword, "manifest authentication")
	}
	zr, err := gzip.NewReader(bytes.NewReader(plain))
	if err != nil {
		return nil, nymerr.Wrapf(CodeTampered, nymstate.ErrBadArchive, "manifest decompress: %v", err)
	}
	var wireForm manifestWire
	if err := gob.NewDecoder(zr).Decode(&wireForm); err != nil {
		return nil, nymerr.Wrapf(CodeTampered, nymstate.ErrBadArchive, "manifest decode: %v", err)
	}
	man := Manifest{
		Name: wireForm.Name, Model: wireForm.Model, Cycles: wireForm.Cycles, Seq: wireForm.Seq,
		AnonDiskName: wireForm.AnonDiskName, CommDiskName: wireForm.CommDiskName,
		AnonWhiteouts: wireForm.AnonWhiteouts, CommWhiteouts: wireForm.CommWhiteouts,
		Files: wireForm.Files, Chunks: wireForm.Chunks, Root: wireForm.Root,
	}
	if len(wireForm.AnonState) > 0 {
		man.AnonState = make(map[string]string, len(wireForm.AnonState))
		for _, kv := range wireForm.AnonState {
			man.AnonState[kv[0]] = kv[1]
		}
	}
	return &man, nil
}

func copyState(st map[string]string) map[string]string {
	if st == nil {
		return nil
	}
	out := make(map[string]string, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}
