// Package vault is NymVault: a content-addressed, deduplicating,
// encrypted checkpoint store for quasi-persistent nym state (paper
// section 3.5). The monolithic path (internal/nymstate) re-seals and
// re-uploads a nym's entire state every save cycle; the vault instead
// splits the state's disk layers into content-defined chunks, stores
// each chunk under a keyed SHA-256 content address with its own
// AES-GCM seal, and commits the chunk list to a small sealed manifest
// carrying a Merkle root (the internal/merkle idiom of section 3.4).
// A save cycle then uploads only chunks the provider does not already
// hold — O(changed chunks) wire cost instead of O(full state) — and a
// restore authenticates every fetched chunk (the seal is bound to the
// chunk's keyed address, which the sealed manifest vouches for) before
// rebuilding byte-identical images.
//
// Addresses are HMAC-SHA256 under a key derived from the nym password,
// not plain digests, so a provider cannot run confirmation attacks
// against guessed content; chunk seals are convergent (nonce derived
// from the address) so re-sealing unchanged content yields identical
// blobs, which is what makes presence checks equal dedup. The manifest
// is the only mutable object. Chunk sets can be replicated or striped
// across multiple providers, and unreferenced chunks are reclaimed by
// garbage collection that never touches chunks the latest manifest
// still names.
package vault
