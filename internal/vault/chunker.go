package vault

// Content-defined chunking. Real file bytes are split at rolling-hash
// boundaries (a buzhash over a sliding window), so an insertion or
// edit early in a file reshapes only the chunks it touches and every
// later chunk keeps its content address — the property that makes
// delta saves cheap. Virtual files (bulk content modeled by size and
// entropy, see internal/unionfs) carry no bytes to hash; they are cut
// into fixed-size segments whose identity derives from the file's
// entropy model, so a cache that grows by a few megabytes re-addresses
// only its tail segment.

// Chunking parameters. Nym state skews small (anonymizer state files,
// credentials, cookies) with bulk content virtual, so the real-byte
// chunker targets small chunks.
const (
	// MinChunk is the smallest real chunk the cutter emits; the
	// rolling hash is not consulted before this many bytes.
	MinChunk = 2 << 10
	// MaxChunk forces a boundary even when the rolling hash never
	// fires (pathological or incompressible content).
	MaxChunk = 32 << 10
	// boundaryMask yields ~8 KiB average chunks: a boundary falls
	// wherever the window hash has its low 13 bits set.
	boundaryMask = (1 << 13) - 1
	// hashWindow is the sliding-window width of the rolling hash.
	hashWindow = 48
	// VirtualChunkBytes is the fixed segment size for virtual content.
	// Small enough that a growing cache re-addresses at most 256 KiB
	// of unchanged tail per save, large enough that a full browser
	// cache stays in the hundreds of segments.
	VirtualChunkBytes = 256 << 10
)

// buzTable maps each byte value to a fixed random 64-bit pattern. It
// is generated deterministically (splitmix64) so chunk boundaries —
// and therefore content addresses — are stable across builds.
var buzTable = func() [256]uint64 {
	var t [256]uint64
	state := uint64(0x6e796d7661756c74) // "nymvault"
	for i := range t {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// cutReal splits data into content-defined chunks. Every byte of data
// appears in exactly one chunk, in order; an empty input yields a
// single empty chunk (an empty real file is still a real file).
func cutReal(data []byte) [][]byte {
	if len(data) <= MinChunk {
		return [][]byte{data}
	}
	var chunks [][]byte
	start := 0
	var h uint64
	for i := range data {
		h = rotl(h, 1) ^ buzTable[data[i]]
		if i-start >= hashWindow {
			// The byte sliding out of the window was rotated once per
			// step since it entered; cancel it at its current rotation.
			h ^= rotl(buzTable[data[i-hashWindow]], hashWindow)
		}
		size := i - start + 1
		if (size >= MinChunk && h&boundaryMask == boundaryMask) || size >= MaxChunk {
			chunks = append(chunks, data[start:i+1])
			start = i + 1
			h = 0
		}
	}
	if start < len(data) {
		chunks = append(chunks, data[start:])
	}
	return chunks
}

// cutVirtual returns the segment sizes of a virtual file: fixed-size
// pieces with a short tail. A zero-size file has no segments.
func cutVirtual(size int64) []int64 {
	var segs []int64
	for off := int64(0); off < size; off += VirtualChunkBytes {
		n := size - off
		if n > VirtualChunkBytes {
			n = VirtualChunkBytes
		}
		segs = append(segs, n)
	}
	return segs
}
