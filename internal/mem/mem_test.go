package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustSpace(t *testing.T, h *Host, name string) *Space {
	t.Helper()
	s, err := h.NewSpace(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteAccountsPages(t *testing.T) {
	h := NewHost(0)
	s := mustSpace(t, h, "vm0")
	if err := s.WriteClass(0, 100, "base", 0); err != nil {
		t.Fatal(err)
	}
	if got := s.TouchedPages(); got != 100 {
		t.Fatalf("touched = %d, want 100", got)
	}
	if got := h.UsedBytes(); got != 100*PageSize {
		t.Fatalf("used = %d, want %d", got, 100*PageSize)
	}
}

func TestKSMMergesIdenticalClassPages(t *testing.T) {
	h := NewHost(0)
	a := mustSpace(t, h, "a")
	b := mustSpace(t, h, "b")
	a.WriteClass(0, 50, "base", 0)
	b.WriteClass(0, 50, "base", 0)
	if h.UsedBytes() != 100*PageSize {
		t.Fatalf("pre-scan used = %d", h.UsedBytes())
	}
	merged := h.ScanAll()
	if merged != 50 {
		t.Fatalf("merged = %d, want 50", merged)
	}
	if h.UsedBytes() != 50*PageSize {
		t.Fatalf("post-scan used = %d, want %d", h.UsedBytes(), 50*PageSize)
	}
	st := h.Stats()
	if st.PagesShared != 50 || st.PagesSharing != 100 {
		t.Fatalf("shared=%d sharing=%d, want 50/100", st.PagesShared, st.PagesSharing)
	}
	if st.SavedBytes != 50*PageSize {
		t.Fatalf("saved = %d", st.SavedBytes)
	}
}

func TestUniquePagesNeverMerge(t *testing.T) {
	h := NewHost(0)
	a := mustSpace(t, h, "a")
	b := mustSpace(t, h, "b")
	a.WriteUnique(0, 30)
	b.WriteUnique(0, 30)
	if merged := h.ScanAll(); merged != 0 {
		t.Fatalf("unique pages merged: %d", merged)
	}
	if h.UsedBytes() != 60*PageSize {
		t.Fatalf("used = %d", h.UsedBytes())
	}
}

func TestZeroPagesMergeHostWide(t *testing.T) {
	h := NewHost(0)
	a := mustSpace(t, h, "a")
	b := mustSpace(t, h, "b")
	c := mustSpace(t, h, "c")
	a.WriteZero(0, 10)
	b.WriteZero(0, 20)
	c.WriteZero(5, 30)
	h.ScanAll()
	if h.UsedBytes() != 1*PageSize {
		t.Fatalf("zero pages use %d bytes, want one frame", h.UsedBytes())
	}
	st := h.Stats()
	if st.PagesSharing != 60 {
		t.Fatalf("sharing = %d, want 60", st.PagesSharing)
	}
}

func TestCOWBreakOnWriteToSharedPage(t *testing.T) {
	h := NewHost(0)
	a := mustSpace(t, h, "a")
	b := mustSpace(t, h, "b")
	a.WriteClass(0, 10, "base", 0)
	b.WriteClass(0, 10, "base", 0)
	h.ScanAll()
	// b dirties 4 of its shared pages with unique content.
	b.WriteUnique(0, 4)
	st := h.Stats()
	if st.COWBreaks != 4 {
		t.Fatalf("cow breaks = %d, want 4", st.COWBreaks)
	}
	// 10 shared frames still exist (a holds refs; 6 still shared by b),
	// plus 4 private pages in b.
	if h.UsedBytes() != 14*PageSize {
		t.Fatalf("used = %d, want %d", h.UsedBytes(), 14*PageSize)
	}
	h.ScanAll()
	if h.UsedBytes() != 14*PageSize {
		t.Fatalf("unique rewrites must not re-merge; used = %d", h.UsedBytes())
	}
}

func TestIdempotentRewriteKeepsSharing(t *testing.T) {
	h := NewHost(0)
	a := mustSpace(t, h, "a")
	b := mustSpace(t, h, "b")
	a.WriteClass(0, 10, "base", 0)
	b.WriteClass(0, 10, "base", 0)
	h.ScanAll()
	before := h.Stats()
	// Rewriting the same content must not break sharing.
	b.WriteClass(0, 10, "base", 0)
	after := h.Stats()
	if after.PagesSharing != before.PagesSharing || after.COWBreaks != before.COWBreaks {
		t.Fatalf("idempotent rewrite changed stats: %+v -> %+v", before, after)
	}
}

func TestScanBudgetRespected(t *testing.T) {
	h := NewHost(0)
	a := mustSpace(t, h, "a")
	b := mustSpace(t, h, "b")
	a.WriteClass(0, 100, "base", 0)
	b.WriteClass(0, 100, "base", 0)
	h.Scan(100) // scans a's pages into the stable tree, no merges yet
	st := h.Stats()
	if st.PendingScan != 100 {
		t.Fatalf("pending = %d, want 100", st.PendingScan)
	}
	merged := h.Scan(40)
	if merged != 40 {
		t.Fatalf("merged = %d, want 40", merged)
	}
}

func TestFreeReleasesFrames(t *testing.T) {
	h := NewHost(0)
	a := mustSpace(t, h, "a")
	b := mustSpace(t, h, "b")
	a.WriteClass(0, 10, "base", 0)
	b.WriteClass(0, 10, "base", 0)
	h.ScanAll()
	a.Free(0, 10)
	if a.TouchedPages() != 0 {
		t.Fatalf("a still has pages")
	}
	// b's pages still exist; frames survive with refs=1.
	if h.UsedBytes() != 10*PageSize {
		t.Fatalf("used = %d, want %d", h.UsedBytes(), 10*PageSize)
	}
	b.Free(0, 10)
	if h.UsedBytes() != 0 {
		t.Fatalf("used = %d after all frees", h.UsedBytes())
	}
	if len(h.stable) != 0 {
		t.Fatalf("stable tree not empty: %d", len(h.stable))
	}
}

func TestReleaseScrubsAndFrees(t *testing.T) {
	h := NewHost(0)
	a := mustSpace(t, h, "a")
	a.WriteClass(0, 25, "base", 0)
	a.WriteUnique(100, 5)
	h.ScanAll()
	a.Release()
	if h.UsedBytes() != 0 {
		t.Fatalf("used = %d after release", h.UsedBytes())
	}
	st := h.Stats()
	if st.ScrubbedBytes != 30*PageSize {
		t.Fatalf("scrubbed = %d, want %d", st.ScrubbedBytes, 30*PageSize)
	}
	if h.Space("a") != nil {
		t.Fatal("released space still registered")
	}
	if err := a.WriteZero(0, 1); err == nil {
		t.Fatal("write to released space succeeded")
	}
}

func TestCapacityEnforced(t *testing.T) {
	h := NewHost(10 * PageSize)
	a := mustSpace(t, h, "a")
	if err := a.WriteUnique(0, 10); err != nil {
		t.Fatalf("within-capacity write failed: %v", err)
	}
	err := a.WriteUnique(10, 1)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// KSM can reclaim room: merge with another space's identical pages
	// is impossible here (unique), but zero pages dedup within space.
	b := NewHost(10 * PageSize)
	s, _ := b.NewSpace("s")
	if err := s.WriteZero(0, 10); err != nil {
		t.Fatal(err)
	}
	b.ScanAll()
	if err := s.WriteZero(10, 5); err != nil {
		t.Fatalf("post-merge write failed despite free frames: %v", err)
	}
}

func TestDuplicateSpaceNameRejected(t *testing.T) {
	h := NewHost(0)
	mustSpace(t, h, "x")
	if _, err := h.NewSpace("x"); err == nil {
		t.Fatal("duplicate space name accepted")
	}
}

func TestInvalidWriteRange(t *testing.T) {
	h := NewHost(0)
	s := mustSpace(t, h, "s")
	if err := s.WriteZero(-1, 5); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := s.WriteZero(0, -5); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestStaleScanEntriesSkipped(t *testing.T) {
	h := NewHost(0)
	a := mustSpace(t, h, "a")
	b := mustSpace(t, h, "b")
	a.WriteClass(0, 10, "base", 0)
	b.WriteClass(0, 10, "base", 0)
	// Rewrite b's pages before any scan: the original queue entries
	// are stale and must not merge the old content.
	b.WriteUnique(0, 10)
	h.ScanAll()
	st := h.Stats()
	if st.PagesSharing != 0 {
		t.Fatalf("stale entries merged: %+v", st)
	}
	if h.UsedBytes() != 20*PageSize {
		t.Fatalf("used = %d", h.UsedBytes())
	}
}

// Property: for any interleaving of identical-class writes across
// spaces, after a full scan, used frames equal the number of distinct
// (class offset) hashes, and logical bytes are conserved.
func TestPropertyMergePreservesLogicalPages(t *testing.T) {
	f := func(aPages, bPages, overlap uint8) bool {
		h := NewHost(0)
		a, _ := h.NewSpace("a")
		b, _ := h.NewSpace("b")
		na := int64(aPages%64) + 1
		nb := int64(bPages%64) + 1
		ov := int64(overlap) % min64(na, nb)
		// a writes [0,na) of class base; b writes [0,ov) of base (mergeable
		// with a) and [ov,nb) unique.
		if err := a.WriteClass(0, na, "base", 0); err != nil {
			return false
		}
		if err := b.WriteClass(0, ov, "base", 0); err != nil {
			return false
		}
		if err := b.WriteUnique(ov, nb-ov); err != nil {
			return false
		}
		h.ScanAll()
		wantFrames := na + (nb - ov) // distinct contents
		if h.UsedBytes() != wantFrames*PageSize {
			return false
		}
		return a.TouchedPages() == na && b.TouchedPages() == nb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: free/release always returns the host to zero usage, and
// shared accounting never goes negative along the way.
func TestPropertyReleaseAlwaysDrains(t *testing.T) {
	f := func(ops []uint16) bool {
		h := NewHost(0)
		spaces := make([]*Space, 4)
		for i := range spaces {
			spaces[i], _ = h.NewSpace(string(rune('a' + i)))
		}
		for _, op := range ops {
			s := spaces[int(op)%len(spaces)]
			start := int64(op>>2) % 32
			n := int64(op>>7)%16 + 1
			switch (op >> 11) % 4 {
			case 0:
				s.WriteClass(start, n, "base", start)
			case 1:
				s.WriteZero(start, n)
			case 2:
				s.WriteUnique(start, n)
			case 3:
				s.Free(start, n)
			}
			if (op>>13)%5 == 0 {
				h.Scan(int(op % 64))
			}
			st := h.Stats()
			if st.PagesShared < 0 || st.PagesSharing < 0 || st.SavedBytes < 0 || st.UsedBytes < 0 {
				return false
			}
		}
		for _, s := range spaces {
			s.Release()
		}
		return h.UsedBytes() == 0 && len(h.stable) == 0 && h.framesPrivate == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
