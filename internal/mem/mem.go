// Package mem models host physical memory at page granularity,
// including KSM (kernel samepage merging). Nymix enables KSM because
// every AnonVM, CommVM and the hypervisor boot from the same base
// image, so a large fraction of their resident pages have identical
// contents and can share a single physical frame (paper section 4.2,
// Figure 3).
//
// Pages are not stored as real 4 KiB buffers; each logical page carries
// a 64-bit content hash. Pages written from the same content class
// (for example, the same base-image block) hash equally across address
// spaces and are therefore mergeable, exactly the property KSM keys on.
package mem

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// PageSize is the size of one page in bytes (4 KiB, as on x86-64).
const PageSize = 4096

// ErrOutOfMemory is returned when an allocation would exceed the
// host's physical capacity.
var ErrOutOfMemory = errors.New("mem: out of host memory")

// frame is one physical page frame tracked by the KSM stable tree.
// refs counts the logical pages currently backed by this frame.
type frame struct {
	hash uint64
	refs int64
}

// page is one logical page in a Space.
type page struct {
	hash uint64
	f    *frame // nil until the KSM scanner has processed the page
	gen  uint64 // bumped on every write; invalidates queued scans
}

// pageRef identifies a logical page awaiting a KSM scan.
type pageRef struct {
	space *Space
	idx   int64
	gen   uint64
}

// Host models a machine's physical memory and its KSM daemon state.
type Host struct {
	capacity int64 // bytes; 0 means unlimited
	spaces   map[string]*Space
	stable   map[uint64]*frame
	pending  []pageRef
	// framesPrivate counts logical pages not yet absorbed into the
	// stable tree; each occupies its own physical frame.
	framesPrivate int64
	scrubbed      int64 // bytes securely erased over the host's lifetime
	merged        int64 // pages merged by KSM over the host's lifetime
	cowBreaks     int64 // copy-on-write breaks of shared frames
}

// NewHost returns a host with the given physical capacity in bytes.
// A capacity of zero disables the limit.
func NewHost(capacity int64) *Host {
	return &Host{
		capacity: capacity,
		spaces:   make(map[string]*Space),
		stable:   make(map[uint64]*frame),
	}
}

// Capacity returns the host's physical memory size in bytes (0 =
// unlimited).
func (h *Host) Capacity() int64 { return h.capacity }

// NewSpace creates a named address space (one per VM, plus one for the
// hypervisor itself). Space names must be unique on a host.
func (h *Host) NewSpace(name string) (*Space, error) {
	if _, ok := h.spaces[name]; ok {
		return nil, fmt.Errorf("mem: space %q already exists", name)
	}
	s := &Space{host: h, name: name, pages: make(map[int64]*page)}
	h.spaces[name] = s
	return s, nil
}

// Space returns the named space, or nil.
func (h *Host) Space(name string) *Space { return h.spaces[name] }

// UsedBytes returns physical memory in use: one frame per unscanned
// page plus one frame per stable-tree entry (shared or not).
func (h *Host) UsedBytes() int64 {
	return (h.framesPrivate + int64(len(h.stable))) * PageSize
}

// FreeBytes returns remaining capacity, or a very large number when the
// host is uncapped.
func (h *Host) FreeBytes() int64 {
	if h.capacity == 0 {
		return 1 << 62
	}
	return h.capacity - h.UsedBytes()
}

// Stats is a snapshot of the host's memory accounting, mirroring the
// counters Linux exposes under /sys/kernel/mm/ksm.
type Stats struct {
	UsedBytes     int64 // physical bytes in use
	PagesShared   int64 // physical frames backing 2+ logical pages
	PagesSharing  int64 // logical pages backed by shared frames
	SavedBytes    int64 // bytes reclaimed by merging
	PendingScan   int64 // pages queued for the KSM scanner
	ScrubbedBytes int64 // lifetime securely-erased bytes
	MergedPages   int64 // lifetime pages merged
	COWBreaks     int64 // lifetime copy-on-write breaks
}

// Stats returns the current accounting snapshot.
func (h *Host) Stats() Stats {
	var shared, sharing, saved int64
	for _, f := range h.stable {
		if f.refs >= 2 {
			shared++
			sharing += f.refs
			saved += (f.refs - 1) * PageSize
		}
	}
	return Stats{
		UsedBytes:     h.UsedBytes(),
		PagesShared:   shared,
		PagesSharing:  sharing,
		SavedBytes:    saved,
		PendingScan:   int64(len(h.pending)),
		ScrubbedBytes: h.scrubbed,
		MergedPages:   h.merged,
		COWBreaks:     h.cowBreaks,
	}
}

// Scan runs the KSM scanner over up to maxPages queued pages and
// returns the number of pages merged into existing frames. Pass a
// negative maxPages to drain the queue.
func (h *Host) Scan(maxPages int) int {
	mergedNow := 0
	processed := 0
	for len(h.pending) > 0 && (maxPages < 0 || processed < maxPages) {
		ref := h.pending[0]
		h.pending = h.pending[1:]
		pg, ok := ref.space.pages[ref.idx]
		if !ok || pg.gen != ref.gen || pg.f != nil {
			continue // page freed, rewritten, or already scanned
		}
		processed++
		if f, ok := h.stable[pg.hash]; ok {
			f.refs++
			pg.f = f
			h.framesPrivate--
			h.merged++
			mergedNow++
			continue
		}
		f := &frame{hash: pg.hash, refs: 1}
		h.stable[pg.hash] = f
		pg.f = f
		h.framesPrivate--
	}
	return mergedNow
}

// ScanAll drains the scan queue, returning total pages merged.
func (h *Host) ScanAll() int { return h.Scan(-1) }

// Space is one address space (a VM's RAM plus its RAM-backed writable
// disk, since Nymix VMs store all file-system writes in host RAM).
type Space struct {
	host   *Host
	name   string
	pages  map[int64]*page
	nextUn uint64 // counter for unique (never-mergeable) content
	dead   bool
}

// Name returns the space's name.
func (s *Space) Name() string { return s.name }

// TouchedPages returns the number of resident logical pages.
func (s *Space) TouchedPages() int64 { return int64(len(s.pages)) }

// TouchedBytes returns resident logical bytes (before any sharing).
func (s *Space) TouchedBytes() int64 { return int64(len(s.pages)) * PageSize }

// classHash hashes a content class name and page offset to a stable
// 64-bit content identifier.
func classHash(class string, i int64) uint64 {
	hsh := fnv.New64a()
	hsh.Write([]byte(class))
	var b [8]byte
	for k := 0; k < 8; k++ {
		b[k] = byte(uint64(i) >> (8 * k))
	}
	hsh.Write(b[:])
	return hsh.Sum64()
}

// zeroHash is the content hash of the all-zero page. All zero pages on
// a host are mergeable with each other.
const zeroHash = 0x5a45524f50414745 // "ZEROPAGE"

// WriteClass writes n pages starting at page index start with content
// drawn from the named class. Pages written from the same class and
// offset in any space are identical and thus KSM-mergeable. The i-th
// page gets the content of class offset classBase+i.
func (s *Space) WriteClass(start, n int64, class string, classBase int64) error {
	return s.write(start, n, func(i int64) uint64 {
		return classHash(class, classBase+i)
	})
}

// WriteZero writes n zero pages starting at start. Zero pages merge
// host-wide.
func (s *Space) WriteZero(start, n int64) error {
	return s.write(start, n, func(int64) uint64 { return zeroHash })
}

// WriteUnique dirties n pages starting at start with content that can
// never merge with any other page (models private, modified state such
// as browser heaps).
func (s *Space) WriteUnique(start, n int64) error {
	return s.write(start, n, func(int64) uint64 {
		s.nextUn++
		return classHash("unique/"+s.name, int64(s.nextUn))
	})
}

func (s *Space) write(start, n int64, content func(i int64) uint64) error {
	if s.dead {
		return fmt.Errorf("mem: write to released space %q", s.name)
	}
	if n < 0 || start < 0 {
		return fmt.Errorf("mem: invalid write range start=%d n=%d", start, n)
	}
	h := s.host
	for i := int64(0); i < n; i++ {
		idx := start + i
		hash := content(i)
		pg, exists := s.pages[idx]
		if exists {
			if pg.hash == hash {
				continue // idempotent rewrite of identical content
			}
			s.detach(pg)
			pg.hash = hash
			pg.gen++
			h.pending = append(h.pending, pageRef{s, idx, pg.gen})
			continue
		}
		if h.capacity != 0 && h.UsedBytes()+PageSize > h.capacity {
			return fmt.Errorf("%w: space %q at %d pages", ErrOutOfMemory, s.name, len(s.pages))
		}
		pg = &page{hash: hash}
		s.pages[idx] = pg
		h.framesPrivate++
		h.pending = append(h.pending, pageRef{s, idx, pg.gen})
	}
	return nil
}

// detach disconnects a page from its stable frame (a copy-on-write
// break when the frame was shared). Afterwards the page is in the
// private state and counted in framesPrivate; detaching an
// already-private page is a no-op.
func (s *Space) detach(pg *page) {
	if pg.f == nil {
		return
	}
	h := s.host
	if pg.f.refs >= 2 {
		h.cowBreaks++
	}
	pg.f.refs--
	if pg.f.refs == 0 {
		delete(h.stable, pg.f.hash)
	}
	pg.f = nil
	h.framesPrivate++
}

// Free releases n pages starting at start. Missing pages are skipped.
func (s *Space) Free(start, n int64) {
	for i := int64(0); i < n; i++ {
		if pg, ok := s.pages[start+i]; ok {
			s.detach(pg)
			s.host.framesPrivate--
			delete(s.pages, start+i)
		}
	}
}

// Release securely erases and frees the entire space, as Nymix does
// when a pseudonym is shut down: "Nymix wipes any traces that the
// pseudonym ever existed and securely erases the AnonVM's and
// CommVM's memory immediately" (section 3.4).
func (s *Space) Release() {
	h := s.host
	for idx, pg := range s.pages {
		s.detach(pg)
		h.framesPrivate--
		h.scrubbed += PageSize
		delete(s.pages, idx)
	}
	s.dead = true
	delete(h.spaces, s.name)
}
