package experiments

import (
	"fmt"
	"time"

	"nymix/internal/core"
	"nymix/internal/sim"
)

// Figure7Row is one startup configuration's phase breakdown, averaged
// over five runs (the paper's methodology).
type Figure7Row struct {
	Config       string // "fresh", "pre-configured", "persisted"
	EphemeralNym time.Duration
	BootVM       time.Duration
	StartTor     time.Duration
	LoadPage     time.Duration
}

// Total sums the phases.
func (r Figure7Row) Total() time.Duration {
	return r.EphemeralNym + r.BootVM + r.StartTor + r.LoadPage
}

// Figure7 reproduces the startup experiment (section 5.4): visit
// Twitter from an ephemeral, a pre-configured, and a persistent nym,
// timing each startup phase over five runs.
func Figure7(seed uint64) ([]Figure7Row, error) {
	const runs = 5
	eng, _, mgr, err := newRig(seed + 300)
	if err != nil {
		return nil, err
	}
	dest := core.StoreDest{Provider: "dropbin", Account: "fig7", AccountPassword: "cpw"}

	average := func(phases []core.StartPhases, config string) Figure7Row {
		var row Figure7Row
		row.Config = config
		for _, ph := range phases {
			row.EphemeralNym += ph.EphemeralNym
			row.BootVM += ph.BootVM
			row.StartTor += ph.StartAnon
			row.LoadPage += ph.FirstPage
		}
		n := time.Duration(len(phases))
		row.EphemeralNym /= n
		row.BootVM /= n
		row.StartTor /= n
		row.LoadPage /= n
		return row
	}

	var rows []Figure7Row

	// Fresh: a brand-new ephemeral nym each run.
	var freshPhases []core.StartPhases
	if err := runProc(eng, "fig7-fresh", func(p *sim.Proc) error {
		for i := 0; i < runs; i++ {
			nym, err := mgr.StartNym(p, fmt.Sprintf("fresh-%d", i), core.Options{})
			if err != nil {
				return err
			}
			if _, err := nym.Visit(p, "twitter.com"); err != nil {
				return err
			}
			freshPhases = append(freshPhases, nym.Phases())
			if err := mgr.TerminateNym(p, nym); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rows = append(rows, average(freshPhases, "fresh"))

	// Prepare a quasi-persistent nym once: boot, sign in to Twitter,
	// snapshot to the cloud.
	if err := runProc(eng, "fig7-prep", func(p *sim.Proc) error {
		nym, err := mgr.StartNym(p, "quasi", core.Options{Model: core.ModelPreconfigured})
		if err != nil {
			return err
		}
		if _, err := nym.Browser().Login(p, "twitter.com", "fig7-user", "pw"); err != nil {
			return err
		}
		if _, err := mgr.StoreNym(p, nym, "pw", dest); err != nil {
			return err
		}
		return mgr.TerminateNym(p, nym)
	}); err != nil {
		return nil, err
	}

	// Pre-configured: load the golden snapshot each run, never save.
	var prePhases []core.StartPhases
	if err := runProc(eng, "fig7-pre", func(p *sim.Proc) error {
		for i := 0; i < runs; i++ {
			nym, err := mgr.LoadNym(p, "quasi", "pw", core.Options{Model: core.ModelPreconfigured}, dest)
			if err != nil {
				return err
			}
			if _, err := nym.Visit(p, "twitter.com"); err != nil {
				return err
			}
			prePhases = append(prePhases, nym.Phases())
			if err := mgr.TerminateNym(p, nym); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rows = append(rows, average(prePhases, "pre-configured"))

	// Persisted: load, browse, save back each run.
	var perPhases []core.StartPhases
	if err := runProc(eng, "fig7-per", func(p *sim.Proc) error {
		for i := 0; i < runs; i++ {
			nym, err := mgr.LoadNym(p, "quasi", "pw", core.Options{Model: core.ModelPersistent}, dest)
			if err != nil {
				return err
			}
			if _, err := nym.Visit(p, "twitter.com"); err != nil {
				return err
			}
			perPhases = append(perPhases, nym.Phases())
			if err := mgr.EndSession(p, nym, "pw", dest); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rows = append(rows, average(perPhases, "persisted"))
	return rows, nil
}

// RenderFigure7 prints the phase breakdown.
func RenderFigure7(rows []Figure7Row) string {
	var t table
	t.row("# Figure 7: average startup time by phase (seconds, 5 runs)")
	t.row("config", "boot_vm", "start_tor", "load_page", "ephemeral", "total")
	for _, r := range rows {
		t.row(r.Config, f1(r.BootVM.Seconds()), f1(r.StartTor.Seconds()),
			f1(r.LoadPage.Seconds()), f1(r.EphemeralNym.Seconds()), f1(r.Total().Seconds()))
	}
	return t.String()
}
