package experiments

// The checkpoint-economy experiment: does the self-tuning cadence
// (churn-adaptive sweeps bounded by a per-member RPO, idle-slot GC)
// actually beat classic fixed-interval checkpointing on BOTH axes —
// total checkpoint wire AND per-save staleness — on the same seed?
//
// The workload is Zipf-skewed, the regime the paper's fleet section
// motivates: a handful of hot nyms rewrite real state every interval,
// a warm band trickles small writes, a thin band dirties in periodic
// bursts, and the long tail sits idle after boot. The pool's
// provider-facing uplink is budgeted per nym (EconomyUplinkPerNym),
// so at any scale the fixed-interval mode — which pays a full login
// exchange for every member every round, idle or not — oversubscribes
// the serialized token window by ~5x. Its rounds skip, its effective
// cadence stretches, and every member's staleness balloons with it.
// The adaptive mode spends the same budget where the churn is: hot
// members every round, warm on their delta target, bursty members
// just inside their RPO deadline, the idle tail never — and the
// leftover idle slots absorb opportunistic vault GC.
import (
	"fmt"
	"time"

	"nymix/internal/cluster"
	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/guestos"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// EconomyMode is the telemetry of one run of the identical workload
// under one sweep policy.
type EconomyMode struct {
	Mode          string // "fixed", "dirty" or "adaptive"
	Rounds        int    // coordinator rounds completed
	RoundsSkipped int    // ticks sat out behind an overrunning pass
	Saves         int
	Skips         int
	Deferred      int
	Errors        int
	UploadMB      float64
	LoginMB       float64
	WireMB        float64 // upload + login: checkpoint wire
	GCRuns        int
	GCReclaimedMB float64
	GCWireMB      float64
	MovesPlanned  int
	MovesExecuted int
	MigrationMB   float64
	TotalWireMB   float64 // checkpoint + GC probes + migrations
	// StaleP50/P95/Max are percentiles over steady-state per-save
	// checkpoint staleness (the cold save's samples are excluded —
	// identical in every mode and dominated by ramp time).
	StaleP50 time.Duration
	StaleP95 time.Duration
	StaleMax time.Duration
}

// EconomyResult compares the three policies on one seeded workload.
type EconomyResult struct {
	Nyms, Hosts  int
	Rounds       int // churn rounds (plus EconomyDrainRounds quiet ones)
	Interval     time.Duration
	RPO          time.Duration
	UplinkBps    float64
	ColdSaveMB   float64 // identical initial full checkpoint
	Fixed        EconomyMode
	Dirty        EconomyMode
	Adaptive     EconomyMode
	WireFrac     float64 // Adaptive.TotalWireMB / Fixed.TotalWireMB
	StaleP95Frac float64 // Adaptive.StaleP95 / Fixed.StaleP95
}

// Gate enforces the economy's acceptance bar: the adaptive cadence
// must strictly beat fixed-interval checkpointing on total wire while
// holding per-save staleness p95 no worse, and must actually have
// exercised the adaptive machinery (deferrals and idle-slot GC).
func (r *EconomyResult) Gate() error {
	if r.Adaptive.TotalWireMB >= r.Fixed.TotalWireMB {
		return fmt.Errorf("economy gate: adaptive wire %.1f MB not strictly under fixed %.1f MB",
			r.Adaptive.TotalWireMB, r.Fixed.TotalWireMB)
	}
	if r.Adaptive.StaleP95 > r.Fixed.StaleP95 {
		return fmt.Errorf("economy gate: adaptive staleness p95 %v worse than fixed %v",
			r.Adaptive.StaleP95, r.Fixed.StaleP95)
	}
	if r.Adaptive.Deferred == 0 {
		return fmt.Errorf("economy gate: adaptive run deferred nothing; cadence never engaged")
	}
	if r.Adaptive.StaleMax > r.RPO+r.Interval {
		return fmt.Errorf("economy gate: adaptive staleness max %v blew the RPO ceiling %v",
			r.Adaptive.StaleMax, r.RPO)
	}
	return nil
}

// Economy defaults and workload shape.
const (
	EconomyInterval    = 30 * time.Second
	EconomyRPO         = 4 * time.Minute // warm/burst/idle staleness ceiling
	EconomyHotRPO      = time.Minute     // hot nyms carry the freshest state
	EconomyTargetDelta = 32 << 10        // dirty bytes worth a save
	// EconomyUplinkPerNym budgets the pool's provider-facing uplink:
	// bytes per second per member, independent of scale. One login
	// exchange per member per interval alone needs ~3.4 KB/s-nym, so
	// fixed-interval sweeps oversubscribe this ~5x by construction.
	EconomyUplinkPerNym = 640.0
	// EconomyDrainRounds quiet rounds run after the churn stops, so
	// the adaptive run's idle slots surface (batched moves drain,
	// opportunistic GC reclaims the churn's dead chunks).
	EconomyDrainRounds = 4

	econHotBytes    = 64 << 10
	econWarmBytes   = 8 << 10
	econBurstBytes  = 2 << 10
	econBurstEvery  = 4 // rounds between one burst member's writes
	EconomyDefaults = 0 // sentinel: Economy(seed, 0, 0, 0) takes defaults
)

// econClass maps a member index onto the Zipf-skewed churn ladder.
// With n=1024: 16 hot, 112 warm, 128 bursty, 768 idle.
func econClass(i, n int) string {
	switch {
	case i < max(1, n/64):
		return "hot"
	case i < max(2, n/8):
		return "warm"
	case i < max(3, n/4):
		return "burst"
	default:
		return "idle"
	}
}

// EconomySpecs builds the all-persistent economy fleet: every member
// durable, so every member is sweep-eligible every round.
func EconomySpecs(n int) []fleet.Spec {
	specs := make([]fleet.Spec, n)
	for i := range specs {
		name := fmt.Sprintf("econ%04d", i)
		specs[i] = fleet.Spec{Name: name, Opts: core.Options{
			Model:     core.ModelPersistent,
			GuardSeed: name,
			AnonRAM:   96 * guestos.MiB,
			AnonDisk:  32 * guestos.MiB,
			CommRAM:   48 * guestos.MiB,
			CommDisk:  8 * guestos.MiB,
		}}
	}
	return specs
}

// econIndex recovers the spec index from a member name.
func econIndex(name string) int {
	var i int
	if _, err := fmt.Sscanf(name, "econ%d", &i); err != nil {
		return -1
	}
	return i
}

// econChurn applies round r's writes to one member per its class:
// same paths every round, fresh content every write, so deferral
// genuinely consolidates intermediate states instead of accumulating
// them. Returns false when the member was not churned this round.
func econChurn(m *fleet.Member, r, n int) (bool, error) {
	if m.Nym() == nil {
		return false, nil
	}
	i := econIndex(m.Name())
	if i < 0 {
		return false, nil
	}
	var path string
	var size int
	switch econClass(i, n) {
	case "hot":
		path, size = "/var/hot-state", econHotBytes
	case "warm":
		path, size = "/var/warm-cache", econWarmBytes
	case "burst":
		if (r+i)%econBurstEvery != 0 {
			return false, nil
		}
		path, size = "/var/burst-log", econBurstBytes
	default:
		return false, nil // idle tail: boot dirt only, then silence
	}
	data := make([]byte, size)
	for j := range data {
		data[j] = byte((i*31 + r*7 + j) % 251)
	}
	return true, m.Nym().CommVM().Disk().WriteFile(path, data)
}

// Economy runs the checkpoint-economy experiment: the identical
// Zipf-churn workload from the identical seed under fixed-interval
// (save-everything) sweeps, plain dirty-skip sweeps, and the full
// adaptive economy. Zero arguments take the production defaults
// (1024 nyms over 4 hosts, 16 churn rounds).
func Economy(seed uint64, nyms, hosts, rounds int) (*EconomyResult, error) {
	if nyms <= 0 {
		nyms = ShardDefaultNyms
	}
	if hosts <= 0 {
		hosts = ShardDefaultHosts
	}
	if rounds <= 0 {
		rounds = 16
	}
	res := &EconomyResult{
		Nyms: nyms, Hosts: hosts, Rounds: rounds,
		Interval:  EconomyInterval,
		RPO:       EconomyRPO,
		UplinkBps: EconomyUplinkPerNym * float64(nyms),
	}
	modes := []struct {
		name string
		out  *EconomyMode
	}{
		{"fixed", &res.Fixed},
		{"dirty", &res.Dirty},
		{"adaptive", &res.Adaptive},
	}
	for _, md := range modes {
		cold, err := economyRun(seed, nyms, hosts, rounds, md.name, md.out)
		if err != nil {
			return nil, fmt.Errorf("economy %s run: %w", md.name, err)
		}
		res.ColdSaveMB = cold
	}
	if res.Fixed.TotalWireMB > 0 {
		res.WireFrac = res.Adaptive.TotalWireMB / res.Fixed.TotalWireMB
	}
	if res.Fixed.StaleP95 > 0 {
		res.StaleP95Frac = float64(res.Adaptive.StaleP95) / float64(res.Fixed.StaleP95)
	}
	return res, nil
}

// economySweepConfig builds the coordinator config for one mode.
func economySweepConfig(mode string, nyms int) cluster.SweepConfig {
	cfg := cluster.SweepConfig{Interval: EconomyInterval}
	switch mode {
	case "fixed":
		cfg.SaveAll = true
	case "adaptive":
		cfg.Adaptive = true
		cfg.RPO = EconomyRPO
		cfg.TargetDeltaBytes = EconomyTargetDelta
		cfg.GC = true
		cfg.RPOFor = func(m *fleet.Member) time.Duration {
			if econClass(econIndex(m.Name()), nyms) == "hot" {
				return EconomyHotRPO
			}
			return EconomyRPO
		}
	}
	return cfg
}

// economyRun executes one mode: ramp, cold save, churn rounds under
// the coordinator, quiet drain rounds, then settle and bill.
func economyRun(seed uint64, nyms, hosts, rounds int, mode string, out *EconomyMode) (float64, error) {
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	// The provider-facing uplink is budgeted per nym and rides one
	// serialized token, so the pool's effective throughput is a
	// single host link no matter the host count.
	uplink := vnet.LinkConfig{
		Latency:  time.Millisecond,
		Capacity: EconomyUplinkPerNym * float64(nyms),
	}
	destFor := func(name string) core.VaultDest {
		return core.VaultDest{
			Providers:       []string{"dropbin"},
			Account:         "acct-" + name,
			AccountPassword: "cloud-pw",
		}
	}
	c, err := cluster.New(eng, world, cluster.Config{
		Hosts:         hosts,
		Uplink:        &uplink,
		VaultPassword: "econ-pw",
		DestFor:       destFor,
		Rebalance: cluster.RebalanceConfig{
			Enabled:         true,
			Interval:        EconomyInterval,
			CostAware:       mode == "adaptive",
			BatchIntoSweeps: mode == "adaptive",
			MaxMovesPerPass: 8,
		},
	})
	if err != nil {
		return 0, err
	}
	out.Mode = mode
	var coldMB float64
	err = runProc(eng, "economy-"+mode, func(p *sim.Proc) error {
		if err := c.LaunchAll(EconomySpecs(nyms)); err != nil {
			return err
		}
		if err := c.AwaitRunning(p, nyms); err != nil {
			return err
		}
		// Cold-save every host directly (identical in every mode), then
		// remember each host's staleness sample count: the steady-state
		// percentiles below must not be polluted by ramp-age samples.
		var coldBytes int64
		for _, h := range c.Hosts() {
			st, err := h.Fleet().SaveSweep(p, "econ-pw", func(m *fleet.Member) core.VaultDest {
				return destFor(m.Name())
			})
			if err != nil {
				return err
			}
			coldBytes += st.UploadedBytes
		}
		coldMB = float64(coldBytes) / float64(guestos.MiB)
		// The serialized cold save skews hosts' staleness anchors by
		// hours on the budgeted uplink (host 0 finishes long before the
		// last host). One dirty-skip pass per host observes every
		// member clean — shipping nothing — so steady-state staleness
		// below measures churn age, not cold-save completion order.
		for _, h := range c.Hosts() {
			if _, err := h.Fleet().SweepOnce(p, fleet.SweepConfig{
				Password: "econ-pw",
				DestFor: func(m *fleet.Member) core.VaultDest {
					return destFor(m.Name())
				},
			}); err != nil {
				return err
			}
		}
		coldSamples := make(map[string]int, hosts)
		for _, h := range c.Hosts() {
			coldSamples[h.Name()] = len(h.Fleet().CheckpointStaleness())
		}
		if err := c.StartSweeps(economySweepConfig(mode, nyms)); err != nil {
			return err
		}
		for r := 0; r < rounds; r++ {
			for _, h := range c.Hosts() {
				for _, m := range h.Fleet().Members() {
					if _, err := econChurn(m, r, nyms); err != nil {
						return err
					}
				}
			}
			p.Sleep(EconomyInterval)
		}
		for r := 0; r < EconomyDrainRounds; r++ {
			p.Sleep(EconomyInterval)
		}
		c.StopSweeps()
		c.AwaitSweepsIdle(p)

		var stale []time.Duration
		for _, h := range c.Hosts() {
			stale = append(stale, h.Fleet().CheckpointStaleness()[coldSamples[h.Name()]:]...)
		}
		out.StaleP50 = fleet.LatencyPercentile(stale, 0.50)
		out.StaleP95 = fleet.LatencyPercentile(stale, 0.95)
		for _, d := range stale {
			if d > out.StaleMax {
				out.StaleMax = d
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	rep := c.SweepReport()
	out.Rounds = rep.Rounds
	out.RoundsSkipped = rep.RoundsSkipped
	out.Saves = rep.Saves
	out.Skips = rep.Skips
	out.Deferred = rep.Deferred
	out.Errors = rep.Errors
	out.UploadMB = float64(rep.UploadedBytes) / float64(guestos.MiB)
	out.LoginMB = float64(rep.LoginBytes) / float64(guestos.MiB)
	out.WireMB = float64(rep.WireBytes()) / float64(guestos.MiB)
	out.GCRuns = rep.GCRuns
	out.GCReclaimedMB = float64(rep.GCReclaimedBytes) / float64(guestos.MiB)
	out.GCWireMB = float64(rep.GCWireBytes) / float64(guestos.MiB)
	out.MovesPlanned = rep.MovesPlanned
	out.MovesExecuted = rep.MovesExecuted
	out.MigrationMB = float64(c.MigrationWireBytes()) / float64(guestos.MiB)
	out.TotalWireMB = out.WireMB + out.GCWireMB + out.MigrationMB
	return coldMB, nil
}

// RenderEconomy prints the experiment.
func RenderEconomy(r *EconomyResult) string {
	var t table
	t.row(fmt.Sprintf("# Checkpoint economy: %d nyms / %d hosts, %d churn rounds at %s (uplink %.0f KB/s, RPO %s)",
		r.Nyms, r.Hosts, r.Rounds, r.Interval, r.UplinkBps/1e3, r.RPO))
	t.row(fmt.Sprintf("# cold save %.1f MB (identical per mode); Zipf churn: %d hot / %d warm / %d burst, rest idle",
		r.ColdSaveMB, max(1, r.Nyms/64), max(2, r.Nyms/8)-max(1, r.Nyms/64), max(3, r.Nyms/4)-max(2, r.Nyms/8)))
	t.row("mode", "rounds", "skipped", "saves", "defer", "wireMB", "gcMB", "totalMB", "staleP50", "staleP95", "staleMax")
	for _, m := range []EconomyMode{r.Fixed, r.Dirty, r.Adaptive} {
		t.row(m.Mode,
			fmt.Sprint(m.Rounds), fmt.Sprint(m.RoundsSkipped),
			fmt.Sprint(m.Saves), fmt.Sprint(m.Deferred),
			f1(m.WireMB), f1(m.GCWireMB), f1(m.TotalWireMB),
			m.StaleP50.Truncate(time.Second).String(),
			m.StaleP95.Truncate(time.Second).String(),
			m.StaleMax.Truncate(time.Second).String())
	}
	t.row(fmt.Sprintf("# adaptive ships %.0f%% of fixed's wire at %.0f%% of its staleness p95 (gc reclaimed %.1f MB in %d runs)",
		100*r.WireFrac, 100*r.StaleP95Frac, r.Adaptive.GCReclaimedMB, r.Adaptive.GCRuns))
	return t.String()
}
