package experiments

import (
	"fmt"
	"time"

	"nymix/internal/core"
	"nymix/internal/sim"
	"nymix/internal/workload"
)

// Figure5Row is one point of the bandwidth experiment: k nyms
// downloading the Linux kernel in parallel through independent Tor
// instances over the shared 10 Mbit/s uplink.
type Figure5Row struct {
	Nyms      int
	ActualSec float64 // slowest download's completion time
	IdealSec  float64 // single-nym time x k (perfect linear scaling)
}

// Figure5 reproduces the download experiment (section 5.2).
func Figure5(seed uint64) ([]Figure5Row, error) {
	var rows []Figure5Row
	var single float64
	for k := 1; k <= 8; k++ {
		eng, _, mgr, err := newRig(seed + uint64(100+k))
		if err != nil {
			return nil, err
		}
		var worst time.Duration
		err = runProc(eng, "fig5", func(p *sim.Proc) error {
			var nyms []*core.Nym
			for i := 0; i < k; i++ {
				nym, err := mgr.StartNym(p, fmt.Sprintf("dl-%d", i), core.Options{})
				if err != nil {
					return err
				}
				nyms = append(nyms, nym)
			}
			// Start every download in its own process so they truly
			// overlap, then join.
			durs := make([]time.Duration, k)
			errs := make([]error, k)
			var joins []*sim.Future[struct{}]
			for i, nym := range nyms {
				i, nym := i, nym
				joins = append(joins, p.Engine().Go(fmt.Sprintf("dl-%d", i), func(dp *sim.Proc) {
					durs[i], errs[i] = workload.DownloadKernel(dp, nym.Browser())
				}))
			}
			if err := sim.AwaitAll(p, joins...); err != nil {
				return err
			}
			for i := 0; i < k; i++ {
				if errs[i] != nil {
					return errs[i]
				}
				if durs[i] > worst {
					worst = durs[i]
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if k == 1 {
			single = worst.Seconds()
		}
		rows = append(rows, Figure5Row{
			Nyms:      k,
			ActualSec: worst.Seconds(),
			IdealSec:  single * float64(k),
		})
	}
	return rows, nil
}

// TorFixedOverhead computes the measured fixed Tor cost from the
// single-nym row: the paper reports ~12%.
func TorFixedOverhead(rows []Figure5Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	// Raw wire time for the kernel over the 10 Mbit/s uplink.
	raw := float64(workload.KernelBytes) / (10e6 / 8)
	return rows[0].ActualSec/raw - 1
}

// RenderFigure5 prints the series.
func RenderFigure5(rows []Figure5Row) string {
	var t table
	t.row("# Figure 5: kernel download time vs. parallel downloading nyms")
	t.row("nyms", "actual_s", "ideal_s")
	for _, r := range rows {
		t.row(fmt.Sprint(r.Nyms), f1(r.ActualSec), f1(r.IdealSec))
	}
	t.row(fmt.Sprintf("# fixed Tor overhead at 1 nym: %.1f%%", 100*TorFixedOverhead(rows)))
	return t.String()
}
