package experiments

import (
	"fmt"

	"nymix/internal/buddies"
	"nymix/internal/core"
	"nymix/internal/sim"
	"nymix/internal/tracker"
	"nymix/internal/webworld"
)

// The ablations quantify design decisions the paper argues
// qualitatively: guard persistence (section 3.5), stain lifetime
// under the three usage models (sections 3.3/3.5), and the structural
// unlinkability of separate nymboxes versus a shared browser profile
// (section 3.1).

// GuardExposureRow compares entry-guard strategies against a network
// with the given fraction of malicious guards.
type GuardExposureRow struct {
	Sessions   int
	Rotating   float64 // fresh guard each boot (pure amnesia)
	Persistent float64 // quasi-persistent nym keeps its guard
	MonteCarlo float64 // simulated rotating exposure (sanity check)
}

// AblationGuardExposure computes compromise probability over session
// counts — why "if Alice uses a pure amnesiac system..., Tor is
// forced to choose a new entry relay each time she boots, greatly
// increasing her vulnerability to intersection attacks".
func AblationGuardExposure(seed uint64, maliciousFrac float64) []GuardExposureRow {
	rng := sim.NewRand(seed + 600)
	var rows []GuardExposureRow
	for _, sessions := range []int{1, 5, 10, 20, 30, 50} {
		rows = append(rows, GuardExposureRow{
			Sessions:   sessions,
			Rotating:   tracker.GuardExposure(sessions, maliciousFrac, true),
			Persistent: tracker.GuardExposure(sessions, maliciousFrac, false),
			MonteCarlo: tracker.SimulateGuardExposure(rng, 4000, sessions, maliciousFrac, true),
		})
	}
	return rows
}

// RenderGuardExposure prints the ablation.
func RenderGuardExposure(rows []GuardExposureRow, frac float64) string {
	var t table
	t.row(fmt.Sprintf("# Ablation: entry-guard exposure (%.0f%% malicious guards)", 100*frac))
	t.row("sessions", "rotating", "persistent", "rotating_mc")
	for _, r := range rows {
		t.row(fmt.Sprint(r.Sessions), fmt.Sprintf("%.3f", r.Rotating),
			fmt.Sprintf("%.3f", r.Persistent), fmt.Sprintf("%.3f", r.MonteCarlo))
	}
	return t.String()
}

// StainRow reports whether a stain planted in session 1 still links
// the nym's sessions k sessions later, per usage model.
type StainRow struct {
	Model          core.UsageModel
	StainSurvives  bool // the marker is still in the profile next session
	SessionsLinked bool // the adversary linked session 1 and session 2
}

// AblationStaining runs the stain experiment: an exploit stains the
// browser in session one; does the adversary link the next session?
func AblationStaining(seed uint64) ([]StainRow, error) {
	var rows []StainRow
	for mi, model := range []core.UsageModel{core.ModelEphemeral, core.ModelPreconfigured, core.ModelPersistent} {
		eng, world, mgr, err := newRig(seed + uint64(700+mi))
		if err != nil {
			return nil, err
		}
		dest := core.StoreDest{Provider: "dropbin", Account: fmt.Sprintf("stain-%d", mi), AccountPassword: "c"}
		var row StainRow
		row.Model = model
		err = runProc(eng, "stain", func(p *sim.Proc) error {
			// Session 1: browse, get stained mid-session.
			nym, err := mgr.StartNym(p, "victim", core.Options{Model: model})
			if err != nil {
				return err
			}
			if model == core.ModelPreconfigured {
				// Golden snapshot taken before the exploit lands.
				if _, err := mgr.StoreNym(p, nym, "pw", dest); err != nil {
					return err
				}
			}
			if _, err := nym.Visit(p, "slashdot.org"); err != nil {
				return err
			}
			nym.Browser().Stain("mullenize-7")
			if _, err := nym.Visit(p, "slashdot.org"); err != nil {
				return err
			}
			if model == core.ModelPersistent {
				if _, err := mgr.StoreNym(p, nym, "pw", dest); err != nil {
					return err
				}
			}
			if err := mgr.TerminateNym(p, nym); err != nil {
				return err
			}
			// Session 2: per model.
			var next *core.Nym
			if model == core.ModelEphemeral {
				next, err = mgr.StartNym(p, "victim-2", core.Options{Model: model})
			} else {
				next, err = mgr.LoadNym(p, "victim", "pw", core.Options{Model: model}, dest)
			}
			if err != nil {
				return err
			}
			row.StainSurvives = next.Browser().Stained()
			if _, err := next.Visit(p, "slashdot.org"); err != nil {
				return err
			}
			return mgr.TerminateNym(p, next)
		})
		if err != nil {
			return nil, err
		}
		// The adversary links sessions through identifying fingerprints.
		cfg := sharedExitConfig(world)
		clusters := tracker.Link(cfg, append(world.AllVisits(), world.TrackerLog()...))
		row.SessionsLinked = tracker.LargestCluster(clusters) > 1 && row.StainSurvives
		rows = append(rows, row)
	}
	return rows, nil
}

// sharedExitConfig marks all Tor exits and Dissent servers as shared
// infrastructure the adversary cannot link on.
func sharedExitConfig(world *webworld.World) tracker.Config {
	cfg := tracker.DefaultConfig()
	for _, r := range world.Relays() {
		cfg.SharedAddrs[r.NodeName] = true
	}
	for _, s := range world.DissentServers() {
		cfg.SharedAddrs[s] = true
	}
	return cfg
}

// RenderStaining prints the ablation.
func RenderStaining(rows []StainRow) string {
	var t table
	t.row("# Ablation: stain lifetime by usage model")
	t.row("model", "stain_survives", "sessions_linked")
	for _, r := range rows {
		t.row(string(r.Model), fmt.Sprint(r.StainSurvives), fmt.Sprint(r.SessionsLinked))
	}
	return t.String()
}

// LinkageRow compares role isolation strategies against the tracker.
type LinkageRow struct {
	Strategy       string
	Roles          int
	LargestCluster int // 1 = fully unlinkable
}

// AblationLinkage plays Alice's three roles (work, family, private)
// through (a) three Nymix nyms and (b) one shared browser profile on
// a native fingerprint, and asks the tracker to link them.
func AblationLinkage(seed uint64) ([]LinkageRow, error) {
	sites := []string{"gmail.com", "facebook.com", "twitter.com"}

	// (a) Nymix: one nym per role.
	eng, world, mgr, err := newRig(seed + 800)
	if err != nil {
		return nil, err
	}
	err = runProc(eng, "nymix-roles", func(p *sim.Proc) error {
		for i, site := range sites {
			nym, err := mgr.StartNym(p, fmt.Sprintf("role-%d", i), core.Options{})
			if err != nil {
				return err
			}
			if _, err := nym.Browser().Login(p, site, fmt.Sprintf("alice-role-%d", i), "pw"); err != nil {
				return err
			}
			if err := mgr.TerminateNym(p, nym); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	cfg := sharedExitConfig(world)
	nymixClusters := tracker.Link(cfg, append(world.AllVisits(), world.TrackerLog()...))

	// (b) Baseline: the same three roles from one browser profile
	// (Tails-like single browser: one fingerprint, shared tracker
	// cookies). Modeled directly as observations.
	var baseline []webworld.Visit
	fp := "firefox-24/alice-laptop/1440x900"
	for i, site := range sites {
		baseline = append(baseline, webworld.Visit{
			Site: site, SourceAddr: "exit-shared", CookieID: fmt.Sprintf("ck-%d", i),
			Fingerprint: fp, Account: fmt.Sprintf("alice-role-%d", i),
		})
	}
	baseCfg := tracker.DefaultConfig()
	baseCfg.SharedAddrs["exit-shared"] = true
	baseClusters := tracker.Link(baseCfg, baseline)

	return []LinkageRow{
		{Strategy: "nymix-per-role-nyms", Roles: len(sites), LargestCluster: tracker.LargestCluster(nymixClusters)},
		{Strategy: "single-browser-baseline", Roles: len(sites), LargestCluster: tracker.LargestCluster(baseClusters)},
	}, nil
}

// RenderLinkage prints the ablation.
func RenderLinkage(rows []LinkageRow) string {
	var t table
	t.row("# Ablation: role linkability (largest cluster; 1 = unlinkable)")
	t.row("strategy", "roles", "largest_cluster")
	for _, r := range rows {
		t.row(r.Strategy, fmt.Sprint(r.Roles), fmt.Sprint(r.LargestCluster))
	}
	return t.String()
}

// BuddiesRow is one round of the Buddies ablation: a victim posting
// over many epochs while the online population churns, with and
// without the anonymity gate.
type BuddiesRow struct {
	Round             int
	OnlineUsers       int
	UngatedCandidates int // intersection-attack set without Buddies
	GatedCandidates   int // with Buddies (floor enforced)
	GatedSuppressed   bool
}

// AblationBuddies quantifies the section 7 plan ("we plan to
// integrate Buddies"): the victim tries to post every round; the
// population shrinks over time. Without Buddies the candidate set
// collapses; with a floor of K the monitor suppresses the dangerous
// posts and the set never drops below K.
func AblationBuddies(seed uint64, floor int, rounds int) []BuddiesRow {
	rng := sim.NewRand(seed + 900)
	const population = 24
	users := make([]string, population)
	for i := range users {
		users[i] = fmt.Sprintf("user-%02d", i)
	}
	gated := buddies.NewMonitor()
	gated.Register("victim", buddies.Policy{MinAnonymitySet: floor})
	ungated := buddies.NewMonitor()
	ungated.Register("victim", buddies.Policy{MinAnonymitySet: 1})

	var rows []BuddiesRow
	for r := 0; r < rounds; r++ {
		// Online population shrinks over time; the victim (user-00) is
		// always online when posting.
		online := []string{users[0]}
		for _, u := range users[1:] {
			frac := 0.9 - 0.8*float64(r)/float64(rounds)
			if rng.Float64() < frac {
				online = append(online, u)
			}
		}
		gated.BeginRound(online)
		ungated.BeginRound(online)
		ungated.RequestPost("victim")
		err := gated.RequestPost("victim")
		rows = append(rows, BuddiesRow{
			Round:             r + 1,
			OnlineUsers:       len(online),
			UngatedCandidates: ungated.AnonymitySet("victim"),
			GatedCandidates:   gated.AnonymitySet("victim"),
			GatedSuppressed:   err != nil,
		})
	}
	return rows
}

// RenderBuddies prints the ablation.
func RenderBuddies(rows []BuddiesRow, floor int) string {
	var t table
	t.row(fmt.Sprintf("# Ablation: Buddies post gating (floor %d)", floor))
	t.row("round", "online", "ungated_set", "gated_set", "suppressed")
	for _, r := range rows {
		t.row(fmt.Sprint(r.Round), fmt.Sprint(r.OnlineUsers),
			fmt.Sprint(r.UngatedCandidates), fmt.Sprint(r.GatedCandidates),
			fmt.Sprint(r.GatedSuppressed))
	}
	return t.String()
}
