package experiments

import (
	"fmt"

	"nymix/internal/core"
	"nymix/internal/guestos"
	"nymix/internal/sim"
	"nymix/internal/vault"
	"nymix/internal/workload"
)

// VaultCycle is one save cycle of the incremental-save experiment:
// what the NymVault delta save shipped versus what the monolithic
// archive of the same state would have cost.
type VaultCycle struct {
	Cycle        int
	MonolithicMB float64 // full sealed archive of this cycle's state
	UploadedMB   float64 // vault wire bytes actually sent (chunks + manifest)
	TotalChunks  int
	NewChunks    int
	DedupPct     float64 // share of the chunk set's wire bytes already stored
}

// VaultIncremental measures the vault against the monolithic archiver
// on a multi-session browsing workload: one persistent nym, a rich
// first session, then revisit sessions with small mutations — the
// usage pattern of section 3.5's quasi-persistent nyms. Cycle 1 pays
// the full state either way; from cycle 2 on the vault ships only
// changed chunks while the monolithic path would re-ship everything.
func VaultIncremental(seed uint64) ([]VaultCycle, error) {
	const cycles = 5
	eng, world, mgr, err := newRig(seed + 900)
	if err != nil {
		return nil, err
	}
	opts := core.Options{Model: core.ModelPersistent, AnonDisk: 256 * guestos.MiB}
	dest := core.VaultDest{Providers: []string{"dropbin"}, Account: "vault-bench", AccountPassword: "cpw"}
	var out []VaultCycle
	record := func(c int, stats vault.SaveStats) {
		out = append(out, VaultCycle{
			Cycle:        c,
			MonolithicMB: float64(stats.BaselineWireBytes) / float64(guestos.MiB),
			UploadedMB:   float64(stats.UploadedBytes) / float64(guestos.MiB),
			TotalChunks:  stats.TotalChunks,
			NewChunks:    stats.NewChunks,
			DedupPct:     100 * stats.DedupFrac(),
		})
	}
	err = runProc(eng, "vault-bench", func(p *sim.Proc) error {
		nym, err := mgr.StartNym(p, "vault-nym", opts)
		if err != nil {
			return err
		}
		for _, site := range []string{"twitter.com", "gmail.com", "facebook.com"} {
			prof := world.Site(site).Profile
			if err := workload.VisitAndMaybeLogin(p, nym.Browser(), prof.RequiresLogin, site, "persona"); err != nil {
				return err
			}
		}
		stats, err := mgr.StoreNymVault(p, nym, "pw", dest)
		if err != nil {
			return err
		}
		record(1, stats)
		if err := mgr.TerminateNym(p, nym); err != nil {
			return err
		}
		for c := 2; c <= cycles; c++ {
			nym, err := mgr.LoadNymVault(p, "vault-nym", "pw", opts, dest)
			if err != nil {
				return fmt.Errorf("cycle %d load: %w", c, err)
			}
			if _, err := nym.Visit(p, "twitter.com"); err != nil {
				return fmt.Errorf("cycle %d visit: %w", c, err)
			}
			stats, err := mgr.StoreNymVault(p, nym, "pw", dest)
			if err != nil {
				return fmt.Errorf("cycle %d store: %w", c, err)
			}
			record(c, stats)
			if _, err := mgr.VaultGC(p, nym, "pw", dest); err != nil {
				return fmt.Errorf("cycle %d gc: %w", c, err)
			}
			if err := mgr.TerminateNym(p, nym); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// VaultSteadyStateFrac returns the cycle-2+ upload cost as a fraction
// of the monolithic baseline (averaged over those cycles).
func VaultSteadyStateFrac(rows []VaultCycle) float64 {
	var up, full float64
	for _, r := range rows[1:] {
		up += r.UploadedMB
		full += r.MonolithicMB
	}
	if full == 0 {
		return 0
	}
	return up / full
}

// RenderVaultIncremental prints the experiment.
func RenderVaultIncremental(rows []VaultCycle) string {
	var t table
	t.row("# NymVault incremental save: wire MB per cycle vs the monolithic archive")
	t.row("cycle", "monolithic", "vault-upload", "chunks", "new", "dedup%")
	for _, r := range rows {
		t.row(fmt.Sprint(r.Cycle), f1(r.MonolithicMB), f1(r.UploadedMB),
			fmt.Sprint(r.TotalChunks), fmt.Sprint(r.NewChunks), f0(r.DedupPct))
	}
	if len(rows) > 1 {
		t.row(fmt.Sprintf("# steady-state upload: %.0f%% of monolithic", 100*VaultSteadyStateFrac(rows)))
	}
	return t.String()
}
