package experiments

import (
	"fmt"

	"nymix/internal/core"
	"nymix/internal/guestos"
	"nymix/internal/sim"
	"nymix/internal/workload"
)

// Figure6Sites are the four sites of the storage experiment.
var Figure6Sites = []string{"gmail.com", "facebook.com", "twitter.com", "blog.torproject.org"}

// Figure6Series is one site's archive sizes across save/restore
// cycles.
type Figure6Series struct {
	Site      string
	SizesMB   []float64
	AnonShare float64 // fraction of the final archive from the AnonVM
}

// Figure6 reproduces the quasi-persistent storage experiment (section
// 5.3): four persistent nyms, each bound to one site, measured across
// ten save/restore cycles. Both VMs get 256 MB disks, per the paper.
func Figure6(seed uint64) ([]Figure6Series, error) {
	const cycles = 10
	opts := core.Options{
		Model:    core.ModelPersistent,
		AnonDisk: 256 * guestos.MiB,
		CommDisk: 256 * guestos.MiB,
	}
	var out []Figure6Series
	for si, site := range Figure6Sites {
		eng, world, mgr, err := newRig(seed + uint64(200+si))
		if err != nil {
			return nil, err
		}
		dest := core.StoreDest{Provider: "dropbin", Account: fmt.Sprintf("acct-%d", si), AccountPassword: "cpw"}
		series := Figure6Series{Site: site}
		name := "fig6-" + site
		prof := world.Site(site).Profile
		err = runProc(eng, "fig6", func(p *sim.Proc) error {
			// Cycle 1: fresh nym, visit, sign in where applicable,
			// remember the login, save to cloud.
			nym, err := mgr.StartNym(p, name, opts)
			if err != nil {
				return err
			}
			if err := workload.VisitAndMaybeLogin(p, nym.Browser(), prof.RequiresLogin, site, "persona-"+site); err != nil {
				return err
			}
			size, err := mgr.StoreNym(p, nym, "pw", dest)
			if err != nil {
				return err
			}
			series.SizesMB = append(series.SizesMB, float64(size)/float64(guestos.MiB))
			if err := mgr.TerminateNym(p, nym); err != nil {
				return err
			}
			// Cycles 2..10: restore, fetch updates, save back.
			for c := 1; c < cycles; c++ {
				nym, err := mgr.LoadNym(p, name, "pw", opts, dest)
				if err != nil {
					return fmt.Errorf("cycle %d load: %w", c, err)
				}
				if _, err := nym.Visit(p, site); err != nil {
					return fmt.Errorf("cycle %d visit: %w", c, err)
				}
				size, err := mgr.StoreNym(p, nym, "pw", dest)
				if err != nil {
					return fmt.Errorf("cycle %d store: %w", c, err)
				}
				series.SizesMB = append(series.SizesMB, float64(size)/float64(guestos.MiB))
				if c == cycles-1 {
					// Apportion the final archive between the two VMs.
					anon := nym.AnonVM().Disk().Used()
					comm := nym.CommVM().Disk().Used()
					if anon+comm > 0 {
						series.AnonShare = float64(anon) / float64(anon+comm)
					}
				}
				if err := mgr.TerminateNym(p, nym); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, series)
	}
	return out, nil
}

// RenderFigure6 prints the series.
func RenderFigure6(series []Figure6Series) string {
	var t table
	t.row("# Figure 6: encrypted quasi-persistent nym size (MB) across save/restore cycles")
	header := []string{"cycle"}
	for _, s := range series {
		header = append(header, s.Site)
	}
	t.row(header...)
	if len(series) == 0 {
		return t.String()
	}
	for c := range series[0].SizesMB {
		row := []string{fmt.Sprint(c + 1)}
		for _, s := range series {
			row = append(row, f1(s.SizesMB[c]))
		}
		t.row(row...)
	}
	for _, s := range series {
		t.row(fmt.Sprintf("# %s: AnonVM share of final archive %.0f%%", s.Site, 100*s.AnonShare))
	}
	return t.String()
}
