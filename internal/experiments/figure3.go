package experiments

import (
	"fmt"

	"nymix/internal/core"
	"nymix/internal/guestos"
	"nymix/internal/sim"
	"nymix/internal/workload"
)

// Figure3Row is one measurement pair of the memory experiment: used
// memory and KSM shared pages before and after interacting with the
// k-th nym's web site.
type Figure3Row struct {
	Nyms         int
	UsedBeforeMB float64
	UsedAfterMB  float64
	SharedBefore int64 // KSM pages_sharing before interaction
	SharedAfter  int64
	ExpectedMB   float64 // baseline + k * per-nymbox estimate (the dashed line)
	SavedMB      float64 // memory KSM reclaimed at this point
}

// PerNymboxMB is the dashed estimate: AnonVM RAM+disk plus CommVM
// RAM+disk (384+128+128+16 = 656 MB, the "approximately 600 MB per
// nymbox" of the abstract).
const PerNymboxMB = float64(core.DefaultAnonRAM+core.DefaultAnonDisk+core.DefaultCommRAM+core.DefaultCommDisk) / float64(guestos.MiB)

// Figure3 reproduces the RAM/KSM experiment (section 5.2): launch
// eight nyms in succession, measuring before and after interacting
// with each one's site (Gmail, Twitter, YouTube, Tor Blog, BBC,
// Facebook, Slashdot, ESPN).
func Figure3(seed uint64) ([]Figure3Row, error) {
	eng, world, mgr, err := newRig(seed)
	if err != nil {
		return nil, err
	}
	var rows []Figure3Row
	baselineMB := float64(mgr.Host().Mem().UsedBytes()) / float64(guestos.MiB)
	err = runProc(eng, "figure3", func(p *sim.Proc) error {
		for k, site := range workload.Figure3Sites {
			nym, err := mgr.StartNym(p, fmt.Sprintf("fig3-%d", k), core.Options{})
			if err != nil {
				return fmt.Errorf("nym %d: %w", k, err)
			}
			before := mgr.Host().MemStats()
			row := Figure3Row{
				Nyms:         k + 1,
				UsedBeforeMB: float64(before.UsedBytes) / float64(guestos.MiB),
				SharedBefore: before.PagesSharing,
				ExpectedMB:   baselineMB + float64(k+1)*PerNymboxMB,
			}
			prof := world.Site(site).Profile
			account := fmt.Sprintf("user-%d", k)
			if err := workload.VisitAndMaybeLogin(p, nym.Browser(), prof.RequiresLogin, site, account); err != nil {
				return fmt.Errorf("visit %s: %w", site, err)
			}
			// Interacting dirties browser heap and page cache beyond the
			// fetch itself.
			if err := nym.AnonVM().DirtyActive(); err != nil {
				return err
			}
			after := mgr.Host().MemStats()
			row.UsedAfterMB = float64(after.UsedBytes) / float64(guestos.MiB)
			row.SharedAfter = after.PagesSharing
			row.SavedMB = float64(after.SavedBytes) / float64(guestos.MiB)
			rows = append(rows, row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure3 prints the series in the figure's layout.
func RenderFigure3(rows []Figure3Row) string {
	var t table
	t.row("# Figure 3: RAM usage and shared pages vs. number of pseudonyms")
	t.row("nyms", "expected_MB", "used_before", "used_after", "shared_before", "shared_after", "ksm_saved_MB")
	for _, r := range rows {
		t.row(fmt.Sprint(r.Nyms), f0(r.ExpectedMB), f0(r.UsedBeforeMB), f0(r.UsedAfterMB),
			fmt.Sprint(r.SharedBefore), fmt.Sprint(r.SharedAfter), f1(r.SavedMB))
	}
	return t.String()
}
