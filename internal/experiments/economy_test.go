package experiments

import (
	"strings"
	"testing"
)

// TestEconomyShape runs the checkpoint-economy experiment at a
// CI-sized scale and holds it to the same acceptance gate the bench
// enforces at production scale: the adaptive cadence must strictly
// beat fixed-interval sweeps on total wire with per-save staleness
// p95 no worse, on the same seed — while the fixed mode genuinely
// overloads (rounds skipped) and the adaptive machinery genuinely
// engages (deferrals, idle-slot GC probes).
func TestEconomyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute three-mode cluster run")
	}
	res, err := Economy(7, 64, 2, 8)
	if err != nil {
		t.Fatalf("economy: %v", err)
	}
	if err := res.Gate(); err != nil {
		t.Fatal(err)
	}
	if res.Fixed.RoundsSkipped == 0 {
		t.Fatal("fixed-interval mode never overran a round; the workload is not oversubscribing the uplink budget")
	}
	if res.Fixed.Saves <= res.Adaptive.Saves {
		t.Fatalf("fixed saved %d <= adaptive %d; save-everything is not paying its overhead", res.Fixed.Saves, res.Adaptive.Saves)
	}
	// The middle point of the frontier: plain dirty-skip holds the
	// best staleness at a wire bill between the other two.
	if res.Dirty.StaleP95 > res.Adaptive.StaleP95 || res.Dirty.StaleP95 > res.Fixed.StaleP95 {
		t.Fatalf("dirty-skip staleness p95 %v not the frontier minimum (fixed %v, adaptive %v)",
			res.Dirty.StaleP95, res.Fixed.StaleP95, res.Adaptive.StaleP95)
	}
	if res.Dirty.TotalWireMB >= res.Fixed.TotalWireMB {
		t.Fatalf("dirty-skip wire %.1f MB >= fixed %.1f MB", res.Dirty.TotalWireMB, res.Fixed.TotalWireMB)
	}
	if res.Adaptive.GCRuns == 0 {
		t.Fatal("adaptive run's idle slots never ran opportunistic GC")
	}
	if res.Adaptive.Errors != 0 || res.Fixed.Errors != 0 || res.Dirty.Errors != 0 {
		t.Fatalf("sweep errors: fixed %d dirty %d adaptive %d", res.Fixed.Errors, res.Dirty.Errors, res.Adaptive.Errors)
	}
	out := RenderEconomy(res)
	for _, want := range []string{"fixed", "dirty", "adaptive", "staleP95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestEconomyChurnClasses pins the Zipf ladder so workload edits are
// deliberate: class boundaries, and that only the intended classes
// write in a given round.
func TestEconomyChurnClasses(t *testing.T) {
	n := 1024
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[econClass(i, n)]++
	}
	if counts["hot"] != 16 || counts["warm"] != 112 || counts["burst"] != 128 || counts["idle"] != 768 {
		t.Fatalf("class ladder = %v, want 16/112/128/768", counts)
	}
	if got := econIndex("econ0042"); got != 42 {
		t.Fatalf("econIndex(econ0042) = %d", got)
	}
	if got := econIndex("fleet003"); got != -1 {
		t.Fatalf("econIndex on a foreign name = %d, want -1", got)
	}
}
