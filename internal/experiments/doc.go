// Package experiments regenerates every table and figure in the
// paper's evaluation (section 5), plus the validation of section 5.1
// and ablations for the design choices discussed in sections 3.5 and
// 7. Beyond the paper it measures the scale-out subsystems the
// ROADMAP grew: NymVault incremental checkpoints (VaultIncremental),
// single-host fleet ramps (FleetRampUp), multi-host sharding with
// live migration (FleetShards), and elastic autoscaling with
// priority-class admission (Elastic). Each generator builds a fresh
// deterministic world from a seed and returns typed rows; Render*
// helpers print them in the paper's layout. cmd/nymbench is the CLI
// front end and bench_test.go wraps each generator in a testing.B
// benchmark.
package experiments
