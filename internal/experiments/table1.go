package experiments

import (
	"time"

	"nymix/internal/installedos"
	"nymix/internal/sim"
)

// Table1Row is one installed-OS-as-nym measurement.
type Table1Row struct {
	Version string
	RepairS float64
	BootS   float64
	SizeMB  float64
}

// Table1 reproduces the installed-OS experiment (section 5.5): repair
// time, boot time, and COW size for Windows Vista, 7, and 8, averaged
// over three runs each.
func Table1(seed uint64) ([]Table1Row, error) {
	const runs = 3
	versions := []installedos.Version{
		installedos.WindowsVista,
		installedos.Windows7,
		installedos.Windows8,
	}
	var rows []Table1Row
	for vi, v := range versions {
		var repairSum, bootSum time.Duration
		var sizeSum float64
		for r := 0; r < runs; r++ {
			eng := sim.NewEngine(seed + uint64(400+vi*10+r))
			img, err := installedos.NewImage(v, nil)
			if err != nil {
				return nil, err
			}
			var repair, boot time.Duration
			var runErr error
			eng.Go("table1", func(p *sim.Proc) {
				repair, runErr = img.Repair(p)
				if runErr != nil {
					return
				}
				boot, runErr = img.Boot(p)
			})
			eng.Run()
			if runErr != nil {
				return nil, runErr
			}
			repairSum += repair
			bootSum += boot
			sizeSum += float64(img.COWBytes()) / (1 << 20)
		}
		rows = append(rows, Table1Row{
			Version: v.Name,
			RepairS: (repairSum / runs).Seconds(),
			BootS:   (bootSum / runs).Seconds(),
			SizeMB:  sizeSum / runs,
		})
	}
	return rows, nil
}

// RenderTable1 prints the table in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var t table
	t.row("# Table 1: installed Windows as a nym")
	t.row("version", "repair_s", "boot_s", "size_MB")
	for _, r := range rows {
		t.row(r.Version, f1(r.RepairS), f1(r.BootS), f1(r.SizeMB))
	}
	return t.String()
}
