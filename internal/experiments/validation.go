package experiments

import (
	"fmt"
	"strings"
	"time"

	"nymix/internal/core"
	"nymix/internal/sim"
)

// ProbeResult is one cell of the section 5.1 isolation matrix.
type ProbeResult struct {
	Src, Dst string
	Reached  bool
	Expected bool
}

// OK reports whether the probe behaved as the architecture requires.
func (p ProbeResult) OK() bool { return p.Reached == p.Expected }

// ValidationReport reproduces the section 5.1 validation: the
// idle-traffic capture on the host uplink and the cross-VM
// communication matrix.
type ValidationReport struct {
	UplinkProtos []string // protocols observed on the uplink
	LeakedVMIDs  []string // VM names visible on the uplink (must be empty)
	Matrix       []ProbeResult
}

// Passed reports overall success.
func (r *ValidationReport) Passed() bool {
	for _, p := range r.UplinkProtos {
		if p != "dhcp" && p != "tor" {
			return false
		}
	}
	if len(r.LeakedVMIDs) != 0 {
		return false
	}
	for _, p := range r.Matrix {
		if !p.OK() {
			return false
		}
	}
	return true
}

// Validation runs the leak checks: two simultaneous nyms, a DHCP
// beacon, browsing traffic, a Wireshark-style capture on the uplink,
// and the full probe matrix.
func Validation(seed uint64) (*ValidationReport, error) {
	eng, _, mgr, err := newRig(seed + 500)
	if err != nil {
		return nil, err
	}
	cap := mgr.Host().Uplink().Tap()
	var nyms []*core.Nym
	err = runProc(eng, "validation", func(p *sim.Proc) error {
		for i := 0; i < 2; i++ {
			nym, err := mgr.StartNym(p, fmt.Sprintf("val-%d", i), core.Options{})
			if err != nil {
				return err
			}
			nyms = append(nyms, nym)
		}
		// Idle period with periodic DHCP renewals, then one page load.
		for i := 0; i < 3; i++ {
			mgr.Host().EmitDHCP()
			p.Sleep(30 * time.Second)
		}
		_, err := nyms[0].Visit(p, "twitter.com")
		return err
	})
	if err != nil {
		return nil, err
	}
	report := &ValidationReport{UplinkProtos: cap.Protos()}
	for _, e := range cap.Entries {
		if strings.HasPrefix(e.ObservedSrc, "nym") {
			report.LeakedVMIDs = append(report.LeakedVMIDs, e.ObservedSrc)
		}
	}
	a0, c0 := nyms[0].AnonVM().Name(), nyms[0].CommVM().Name()
	a1, c1 := nyms[1].AnonVM().Name(), nyms[1].CommVM().Name()
	net := mgr.World().Net()
	probes := []struct {
		src, dst string
		expected bool
	}{
		{a0, c0, true},  // own CommVM over the virtual wire
		{a0, a1, false}, // other AnonVM
		{a0, c1, false}, // other CommVM
		{a0, "host", false},
		{a0, "site:twitter.com", false},
		{a0, "intranet-fileserver", false},
		{c0, c1, false},
		{c0, a1, false},
		{c0, "intranet-fileserver", false},
		{c0, "site:twitter.com", true}, // Internet via NAT
	}
	for _, pr := range probes {
		report.Matrix = append(report.Matrix, ProbeResult{
			Src: pr.src, Dst: pr.dst,
			Reached:  net.CanReach(pr.src, pr.dst, "tcp"),
			Expected: pr.expected,
		})
	}
	return report, nil
}

// RenderValidation prints the report.
func RenderValidation(r *ValidationReport) string {
	var t table
	t.row("# Section 5.1 validation")
	t.row(fmt.Sprintf("uplink protocols: %v (want only dhcp + anonymizer)", r.UplinkProtos))
	t.row(fmt.Sprintf("VM identities leaked on uplink: %d", len(r.LeakedVMIDs)))
	t.row("src", "dst", "reached", "expected", "ok")
	for _, p := range r.Matrix {
		t.row(p.Src, p.Dst, fmt.Sprint(p.Reached), fmt.Sprint(p.Expected), fmt.Sprint(p.OK()))
	}
	t.row(fmt.Sprintf("PASSED: %v", r.Passed()))
	return t.String()
}
