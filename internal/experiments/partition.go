package experiments

import (
	"fmt"
	"time"

	"nymix/internal/cluster"
	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/slo"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// The partition experiment: a two-region cluster (east/west hosting
// regions uplinked to the backbone's core region) rides out a
// scripted fault schedule — an asymmetric peer partition, a
// region-severing provider partition on each side — while MigrateNym
// and the sweep coordinator keep working. It proves the paper's
// deployment story under hostile networks rather than process death:
// migrations cross severed peer boundaries untouched (the vault is
// the channel), a provider partition on the source falls back to the
// last checkpoint, every failure classifies under a registered code,
// and no host leaks a reservation. Ground truth comes from the
// fabric itself: per-host uplink WireTaps whose byte totals must
// equal the links' flow-detach ledgers.

// PartitionHostTap is one host uplink's wire accounting.
type PartitionHostTap struct {
	Host     string  `json:"host"`
	Region   string  `json:"region"`
	TxMB     float64 `json:"tx_mb"`     // host -> region gateway
	RxMB     float64 `json:"rx_mb"`     // region gateway -> host
	TapMB    float64 `json:"tap_mb"`    // tap total (tx+rx)
	LedgerMB float64 `json:"ledger_mb"` // per-flow detach ledger on the same link
	Match    bool    `json:"match"`     // |tap-ledger| <= 1 byte
}

// PartitionResult is the experiment's machine-readable record.
type PartitionResult struct {
	Seed        uint64   `json:"seed"`
	Nyms        int      `json:"nyms"`
	Hosts       int      `json:"hosts"`
	Regions     []string `json:"regions"`
	RampSeconds float64  `json:"ramp_seconds"`

	// Phase A: asymmetric peer partition (east->west severed one way)
	// during a migration. The vault is the migration channel, so the
	// move must succeed without a retry.
	AsymmetryObserved bool   `json:"asymmetry_observed"` // east->west dark, west->east routed
	PeerMigrationOK   bool   `json:"peer_migration_ok"`
	PeerMigrationNym  string `json:"peer_migration_nym"`

	// Phase B: the source region severed from the core (providers
	// unreachable) during a migration. The fresh save fails typed and
	// the move falls back to the last sweep checkpoint.
	FallbackMigrationOK  bool    `json:"fallback_migration_ok"`
	FallbackRetried      bool    `json:"fallback_retried"`
	FallbackMigrationNym string  `json:"fallback_migration_nym"`
	FallbackDoneSeconds  float64 `json:"fallback_done_seconds"` // offset from schedule start when the move landed

	// Phase C: the west region severed from the core during a sweep
	// round. Sweep errors must all carry registered codes.
	SweepErrors             int `json:"sweep_errors"`
	SweepErrorsUnclassified int `json:"sweep_errors_unclassified"`

	// SLO over the whole run.
	TotalFailures  int            `json:"total_failures"`
	Unclassified   int            `json:"unclassified"`
	FailuresByCode map[string]int `json:"failures_by_code"`

	// Zero-leak check after StopAll.
	LeakedReservationBytes int64 `json:"leaked_reservation_bytes"`

	// Wire accounting.
	Taps          []PartitionHostTap `json:"taps"`
	TapTotalMB    float64            `json:"tap_total_mb"`
	LedgerTotalMB float64            `json:"ledger_total_mb"`
	TapsMatch     bool               `json:"taps_match"`

	FaultLog []string `json:"fault_log"`
}

// Partition sizing: big enough that both regions host persistent
// nyms, small enough to stay a smoke-testable experiment.
const (
	partitionNyms  = 24
	partitionHosts = 4
)

// partitionRegions maps host index to hosting region: even hosts
// east, odd hosts west.
func partitionRegions(i int) string {
	if i%2 == 0 {
		return "east"
	}
	return "west"
}

// partitionSpecs is the fleet profile with persistent nyms every 3rd
// slot instead of FleetSpecs' every 4th: with a 4-host round-robin
// placement, a stride-4 cadence would pile every persistent nym onto
// one host, and this experiment needs checkpointed state in both
// regions.
func partitionSpecs(n int) []fleet.Spec {
	specs := make([]fleet.Spec, n)
	for i := range specs {
		name := fmt.Sprintf("fleet%03d", i)
		opts := FleetNymOptions(name, 1) // density sizing, ephemeral base
		if i%3 == 0 {
			opts.Model = core.ModelPersistent
			opts.GuardSeed = name
		}
		specs[i] = fleet.Spec{Name: name, Opts: opts}
	}
	return specs
}

// Partition runs the two-region fault-schedule experiment.
func Partition(seed uint64) (*PartitionResult, error) {
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	net := world.Net()
	c, err := cluster.New(eng, world, cluster.Config{
		Hosts:     partitionHosts,
		RegionFor: partitionRegions,
	})
	if err != nil {
		return nil, err
	}
	res := &PartitionResult{
		Seed:    seed,
		Nyms:    partitionNyms,
		Hosts:   partitionHosts,
		Regions: []string{"east", "west"},
	}

	// Ground-truth taps on every host uplink, attached before any
	// traffic so tap totals are comparable to the links' ledgers.
	type hostTap struct {
		host   *cluster.Host
		region string
		link   *vnet.Link
		tap    *vnet.WireTap
	}
	var taps []hostTap
	for i, h := range c.Hosts() {
		up := h.Manager().Host().Uplink()
		taps = append(taps, hostTap{
			host:   h,
			region: partitionRegions(i),
			link:   up,
			tap:    up.NICFor(h.Manager().Host().Node()).WireTap(),
		})
	}

	var migErr error
	err = runProc(eng, "partition", func(p *sim.Proc) error {
		t0 := p.Now()
		if err := c.LaunchAll(partitionSpecs(partitionNyms)); err != nil {
			return err
		}
		if err := c.AwaitRunning(p, partitionNyms); err != nil {
			return err
		}
		res.RampSeconds = (p.Now() - t0).Seconds()

		// Sweeps give every persistent nym a vault checkpoint — the
		// state the fallback migration later leans on. SaveAll keeps
		// every round on the providers (dirty-skip would otherwise let
		// the severed-window rounds pass without touching the wire).
		if err := c.StartSweeps(cluster.SweepConfig{Interval: 20 * time.Second, Tokens: 2, SaveAll: true}); err != nil {
			return err
		}

		// The scripted schedule. Offsets are from this instant; the
		// phases below sleep to known points inside each window.
		net.Play(
			vnet.SeverOneWayFault(45*time.Second, "east", "west"),
			vnet.HealFault(60*time.Second, "east", "west"),
			vnet.SeverFault(65*time.Second, "east", webworld.CoreRegion),
			vnet.HealFault(85*time.Second, "east", webworld.CoreRegion),
			vnet.SeverFault(130*time.Second, "west", webworld.CoreRegion),
			vnet.HealFault(155*time.Second, "west", webworld.CoreRegion),
		)
		start := p.Now()
		at := func(offset time.Duration) {
			if target := start + sim.Time(offset); target > p.Now() {
				p.Sleep(target - p.Now())
			}
		}

		eastNyms := persistentOn(c, "east")
		if len(eastNyms) < 2 {
			return fmt.Errorf("partition: want 2 persistent nyms on east hosts, have %d", len(eastNyms))
		}
		westHost := hostIn(c, "west")

		// Phase A: migrate across the severed peer boundary.
		at(50 * time.Second)
		eastHost := c.HostOf(eastNyms[0]).Name()
		res.AsymmetryObserved = !net.CanReach(eastHost, westHost, "probe") &&
			net.CanReach(westHost, eastHost, "probe")
		res.PeerMigrationNym = eastNyms[0]
		repA, errA := c.MigrateNym(p, eastNyms[0], westHost)
		res.PeerMigrationOK = errA == nil && !repA.Retried
		if errA != nil {
			migErr = fmt.Errorf("peer-partition migration: %w", errA)
		}

		// Phase B: migrate while the source region cannot reach the
		// providers. The fresh save fails typed; the carried state is
		// the last sweep checkpoint.
		at(70 * time.Second)
		res.FallbackMigrationNym = eastNyms[1]
		repB, errB := c.MigrateNym(p, eastNyms[1], westHost)
		res.FallbackMigrationOK = errB == nil
		res.FallbackRetried = repB.Retried
		res.FallbackDoneSeconds = (p.Now() - start).Seconds()
		if errB != nil && migErr == nil {
			migErr = fmt.Errorf("fallback migration: %w", errB)
		}

		// Phase C: let the sweep round scheduled inside the west/core
		// window fail typed, then heal and drain.
		at(165 * time.Second)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		c.AwaitSettled(p)
		return c.StopAll(p)
	})
	if err != nil {
		return nil, err
	}
	if migErr != nil {
		return nil, migErr
	}

	for _, e := range c.SweepErrors() {
		res.SweepErrors++
		if nymerr.Classify(e) == "" {
			res.SweepErrorsUnclassified++
		}
	}
	rep := slo.FromCluster(c)
	res.TotalFailures = rep.TotalFailures
	res.Unclassified = rep.Unclassified
	res.FailuresByCode = make(map[string]int, len(rep.FailuresByCode))
	for _, fc := range rep.FailuresByCode {
		res.FailuresByCode[string(fc.Code)] = fc.Count
	}
	for _, h := range c.Hosts() {
		res.LeakedReservationBytes += h.Fleet().ReservedBytes()
	}

	const mb = 1 << 20
	res.TapsMatch = true
	for _, ht := range taps {
		tapB := ht.tap.Bytes()
		ledgerB := ht.link.LedgerBytesTotal()
		match := diff64(tapB, ledgerB) <= 1 && diff64(tapB, ht.link.WireBytesTotal()) <= 1
		res.Taps = append(res.Taps, PartitionHostTap{
			Host:     ht.host.Name(),
			Region:   ht.region,
			TxMB:     float64(ht.tap.TxBytes()) / mb,
			RxMB:     float64(ht.tap.RxBytes()) / mb,
			TapMB:    float64(tapB) / mb,
			LedgerMB: float64(ledgerB) / mb,
			Match:    match,
		})
		res.TapTotalMB += float64(tapB) / mb
		res.LedgerTotalMB += float64(ledgerB) / mb
		if !match {
			res.TapsMatch = false
		}
	}
	for _, f := range net.FaultLog() {
		res.FaultLog = append(res.FaultLog, fmt.Sprintf("t=%s %s", f.At, f.Label))
	}
	return res, nil
}

// persistentOn lists the persistent fleet nyms currently placed on
// hosts in the given region, in spec order.
func persistentOn(c *cluster.Cluster, region string) []string {
	var out []string
	for i := 0; i < partitionNyms; i += 3 { // every 3rd nym is persistent (partitionSpecs)
		name := fmt.Sprintf("fleet%03d", i)
		h := c.HostOf(name)
		if h == nil {
			continue
		}
		if regionOfHost(c, h) == region {
			out = append(out, name)
		}
	}
	return out
}

// hostIn returns the name of the first host in the region.
func hostIn(c *cluster.Cluster, region string) string {
	for i, h := range c.Hosts() {
		if partitionRegions(i) == region {
			return h.Name()
		}
	}
	return ""
}

func regionOfHost(c *cluster.Cluster, h *cluster.Host) string {
	for i, hh := range c.Hosts() {
		if hh == h {
			return partitionRegions(i)
		}
	}
	return ""
}

func diff64(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// RenderPartition prints the experiment.
func RenderPartition(r *PartitionResult) string {
	var t table
	t.row(fmt.Sprintf("# Partition: %d nyms over %d hosts in regions %v (+ core backbone), scripted fault schedule",
		r.Nyms, r.Hosts, r.Regions))
	t.row(fmt.Sprintf("ramp %.1fs; faults applied: %d", r.RampSeconds, len(r.FaultLog)))
	for _, f := range r.FaultLog {
		t.row("  " + f)
	}
	t.row(fmt.Sprintf("peer partition:     asymmetry observed=%v, migration of %s ok=%v (vault channel crosses the sever)",
		r.AsymmetryObserved, r.PeerMigrationNym, r.PeerMigrationOK))
	t.row(fmt.Sprintf("provider partition: migration of %s ok=%v retried=%v (fell back to the last sweep checkpoint)",
		r.FallbackMigrationNym, r.FallbackMigrationOK, r.FallbackRetried))
	t.row(fmt.Sprintf("sweep errors: %d (%d unclassified); failures: %d (%d unclassified); leaked reservation bytes: %d",
		r.SweepErrors, r.SweepErrorsUnclassified, r.TotalFailures, r.Unclassified, r.LeakedReservationBytes))
	for _, kv := range sortedCodeCountList(r.FailuresByCode) {
		t.row(fmt.Sprintf("  %-36s %d", kv.code, kv.n))
	}
	t.row("host uplink taps (tap == ledger is the fabric's double-entry check):")
	t.row("host", "region", "tx-MB", "rx-MB", "tap-MB", "ledger-MB", "match")
	for _, ht := range r.Taps {
		t.row(ht.Host, ht.Region, f1(ht.TxMB), f1(ht.RxMB), f1(ht.TapMB), f1(ht.LedgerMB), fmt.Sprint(ht.Match))
	}
	t.row(fmt.Sprintf("tap total %.1f MB vs ledger total %.1f MB, match=%v", r.TapTotalMB, r.LedgerTotalMB, r.TapsMatch))
	return t.String()
}

type codeCount struct {
	code string
	n    int
}

func sortedCodeCountList(m map[string]int) []codeCount {
	out := make([]codeCount, 0, len(m))
	for c, n := range m {
		out = append(out, codeCount{c, n})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].code < out[j-1].code; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
