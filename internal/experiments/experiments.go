package experiments

import (
	"fmt"
	"strings"

	"nymix/internal/core"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// newRig builds the standard evaluation setup: the default world and
// a Nymix host with the paper's 16 GB / quad-core configuration.
func newRig(seed uint64) (*sim.Engine, *webworld.World, *core.Manager, error) {
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	return eng, world, mgr, nil
}

// runProc executes fn as a simulated process, drains the engine, and
// returns fn's error.
func runProc(eng *sim.Engine, name string, fn func(p *sim.Proc) error) error {
	var err error
	eng.Go(name, func(p *sim.Proc) { err = fn(p) })
	eng.Run()
	return err
}

// table is a tiny fixed-width renderer for paper-style output.
type table struct {
	b strings.Builder
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			t.b.WriteString("  ")
		}
		fmt.Fprintf(&t.b, "%-14s", c)
	}
	t.b.WriteByte('\n')
}

func (t *table) String() string { return t.b.String() }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
