package experiments

import (
	"fmt"
	"time"

	"nymix/internal/cluster"
	"nymix/internal/core"
	"nymix/internal/cpusched"
	"nymix/internal/fleet"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// defaultElasticChip sizes the elastic scenario's hosts: a 4-core
// commodity box, so the pool scales out rather than up.
func defaultElasticChip() cpusched.Config { return cpusched.Config{Cores: 4, SMTFactor: 1.3} }

// The elastic experiment is the ROADMAP's cluster-elasticity scenario
// end to end: a bursty launch wave hits a small floor pool, the
// autoscaler grows the pool while priority-class admission and
// preemption keep System launches from starving behind the ephemeral
// tail, the wave quiesces, and the autoscaler drains the surplus hosts
// back to the floor over the vault-backed migration machinery. The
// same wave is replayed against a fixed floor-sized pool for contrast:
// everything the fixed pool cannot admit stalls forever.

// Elastic scenario sizing (overridable via ElasticOn / nymbench
// flags). The autoscaler's floor sits below the initial pool size, so
// the quiesce phase drains through a host that still carries live
// persistent nyms — the migration half of elasticity — instead of
// only retiring hosts the teardown already emptied.
const (
	ElasticDefaultNyms  = 96
	ElasticDefaultHosts = 2
	ElasticFloorHosts   = 1
)

// ElasticClassRow is one admission class in one mode of the elastic
// experiment.
type ElasticClassRow struct {
	Mode      string // "fixed" or "elastic"
	Class     string // "system", "persistent", "ephemeral"
	Launched  int
	Admitted  int           // reached Running at least once
	Stalled   int           // never admitted when the run settled
	Preempted int           // admitted, later sacrificed to a higher class
	P50, P95  time.Duration // time-to-admit among admitted (cluster accept -> Running)
}

// ElasticResult aggregates both modes of the elastic experiment.
type ElasticResult struct {
	Nyms         int
	InitialHosts int
	FloorHosts   int
	MaxHosts     int
	Rows         []ElasticClassRow

	// The elastic pool's story.
	GrowEvents      int
	ShrinkEvents    int
	HostsPeak       int
	HostsEnd        int
	BurstToAdmitted time.Duration // launch start -> wave settled (everything admitted)
	DrainElapsed    time.Duration // quiesce -> pool back at the floor
	DrainMoves      int           // migrations paid by the drain phase
	DrainWireMB     float64       // cross-host vault wire of those moves
	LeakedBytes     int64         // reservation bytes unaccounted anywhere (must be 0)
	ScaleLog        []cluster.ScaleEvent

	// The fixed pool's story.
	FixedStalled int // launches the fixed pool never admitted
}

// ElasticSpecs builds the n-nym burst wave: every eighth nym is a
// System-class persistent nym (infrastructure that must land), every
// other fourth a persistent user nym, the rest disposable ephemerals.
func ElasticSpecs(n int) []fleet.Spec {
	specs := make([]fleet.Spec, n)
	for i := range specs {
		name := fmt.Sprintf("elastic%03d", i)
		opts := FleetNymOptions(name, i)
		var pri fleet.Priority
		if i%8 == 0 {
			opts.Model = core.ModelPersistent
			opts.GuardSeed = name
			pri = fleet.PrioritySystem
		}
		specs[i] = fleet.Spec{Name: name, Opts: opts, Priority: pri}
	}
	return specs
}

// ElasticClusterConfig is the pool the elastic experiment runs: 8 GiB
// 4-core hosts (about 36 density-tuned nymboxes each), short
// simulated dwells so decisions land in tens of seconds, preemption
// armed in both modes, and — in elastic mode — an autoscaler from
// floor to 3x floor. On the fixed pool preemption is the only relief
// (10s dwell); on the elastic pool its dwell sits past the grow path's
// time-to-provision, so new capacity absorbs sustained pressure and
// victims die only once the ceiling is hit.
func ElasticClusterConfig(hosts int, elastic bool) cluster.Config {
	cfg := cluster.Config{
		Hosts: hosts,
		HostConfig: hypervisor.Config{
			RAMBytes: 8 << 30,
			CPU:      defaultElasticChip(),
		},
		Preempt: cluster.PreemptConfig{Enabled: true, Dwell: 10 * time.Second},
	}
	if elastic {
		cfg.Autoscale = cluster.AutoscaleConfig{
			Enabled:        true,
			MinHosts:       ElasticFloorHosts,
			MaxHosts:       3 * hosts,
			GrowDwell:      5 * time.Second,
			ProvisionDelay: 20 * time.Second,
			ShrinkShare:    0.6,
			ShrinkDwell:    15 * time.Second,
		}
		cfg.Preempt.Dwell = 45 * time.Second
	}
	return cfg
}

// Elastic runs the experiment at the default scale. Zero nyms/hosts
// take the defaults (a 96-nym burst on an initial pool of 2).
func Elastic(seed uint64, nyms, hosts int) (*ElasticResult, error) {
	if nyms <= 0 {
		nyms = ElasticDefaultNyms
	}
	if hosts <= 0 {
		hosts = ElasticDefaultHosts
	}
	return ElasticOn(seed, nyms, hosts, hypervisor.Config{})
}

// ElasticOn runs the elastic experiment with explicit host sizing
// (zero config = the 8 GiB scenario profile). Tests use small hosts so
// the pool scales at a handful of nyms.
func ElasticOn(seed uint64, nyms, hosts int, hostCfg hypervisor.Config) (*ElasticResult, error) {
	res := &ElasticResult{
		Nyms:         nyms,
		InitialHosts: hosts,
		FloorHosts:   ElasticFloorHosts,
		MaxHosts:     3 * hosts,
	}
	fixed, err := elasticRun(seed+7000, nyms, hosts, false, hostCfg, res)
	if err != nil {
		return nil, fmt.Errorf("elastic fixed: %w", err)
	}
	elastic, err := elasticRun(seed+7001, nyms, hosts, true, hostCfg, res)
	if err != nil {
		return nil, fmt.Errorf("elastic scale-up: %w", err)
	}
	res.Rows = append(fixed, elastic...)
	return res, nil
}

// memberStat is one launch's admission outcome, snapshotted before
// drain-phase migrations reshuffle members across hosts.
type memberStat struct {
	class     string
	admitted  bool
	preempted bool
	wait      time.Duration
}

func elasticRun(seed uint64, nyms, hosts int, elastic bool, hostCfg hypervisor.Config, res *ElasticResult) ([]ElasticClassRow, error) {
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	cfg := ElasticClusterConfig(hosts, elastic)
	if hostCfg.RAMBytes != 0 || hostCfg.CPU.Cores != 0 {
		cfg.HostConfig = hostCfg
	}
	c, err := cluster.New(eng, world, cfg)
	if err != nil {
		return nil, err
	}
	specs := ElasticSpecs(nyms)
	stats := make(map[string]*memberStat, nyms)
	for _, s := range specs {
		stats[s.Name] = &memberStat{class: s.EffectivePriority().String()}
	}
	mode := "fixed"
	if elastic {
		mode = "elastic"
	}

	err = runProc(eng, "elastic-"+mode, func(p *sim.Proc) error {
		// Phase 1: the burst. Settled means every launch was admitted,
		// preempted after admission, or (fixed mode) stalled for good.
		t0 := p.Now()
		if err := c.LaunchAll(specs); err != nil {
			return err
		}
		c.AwaitSettled(p)
		burst := p.Now() - t0
		collectElasticStats(c, stats)
		if elastic {
			res.BurstToAdmitted = burst
			res.HostsPeak = c.ActiveHosts()
			if queued := c.QueuedClusterWide(); queued != 0 {
				return fmt.Errorf("elastic pool left %d launches queued after settling", queued)
			}
		} else {
			res.FixedStalled = c.QueuedClusterWide()
			return nil // the fixed pool's story ends stalled
		}

		// Phase 2: quiesce. The ephemeral wave ends; the fleet's
		// teardown fans out per host.
		preDrainMoves := c.Migrations()
		preDrainWire := c.MigrationWireBytes()
		var stops []*sim.Future[struct{}]
		for _, h := range c.Hosts() {
			h := h
			for _, m := range h.Fleet().Members() {
				if m.State() != fleet.StateRunning || m.Priority() != fleet.PriorityEphemeral {
					continue
				}
				name := m.Name()
				stops = append(stops, eng.Go("quiesce-"+name, func(sp *sim.Proc) {
					h.Fleet().Stop(sp, name)
				}))
			}
		}
		for _, f := range stops {
			sim.Await(p, f)
		}

		// Phase 3: drain toward the floor. AwaitSettled covers the
		// shrink dwells and the in-flight drains, so when it returns the
		// autoscaler has converged: either the floor was reached or the
		// survivors' load sits above the shrink watermark.
		t1 := p.Now()
		c.AwaitSettled(p)
		res.DrainElapsed = p.Now() - t1
		res.DrainMoves = c.Migrations() - preDrainMoves
		res.DrainWireMB = float64(c.MigrationWireBytes()-preDrainWire) / (1 << 20)
		res.HostsEnd = c.ActiveHosts()
		res.LeakedBytes = elasticLeakedBytes(c)
		st := c.Snapshot()
		res.GrowEvents = st.GrowEvents
		res.ShrinkEvents = st.ShrinkEvents
		res.ScaleLog = c.ScaleLog()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return elasticClassRows(mode, stats), nil
}

// collectElasticStats snapshots every launch's admission outcome from
// the live pool (pre-drain, so no member has been detached by a
// migration yet).
func collectElasticStats(c *cluster.Cluster, stats map[string]*memberStat) {
	for _, h := range c.Hosts() {
		for _, m := range h.Fleet().Members() {
			st := stats[m.Name()]
			if st == nil {
				continue
			}
			if m.RunningAt() > 0 {
				st.admitted = true
				if at, ok := c.LaunchedAt(m.Name()); ok {
					st.wait = m.RunningAt() - at
				}
			}
			if m.State() == fleet.StatePreempted {
				st.preempted = true
			}
		}
	}
}

// elasticLeakedBytes cross-checks reservation accounting after the
// drain: active hosts must hold exactly their Running members'
// footprints, retired hosts nothing.
func elasticLeakedBytes(c *cluster.Cluster) int64 {
	var leaked int64
	for _, h := range c.Hosts() {
		var want int64
		for _, m := range h.Fleet().Members() {
			if m.State() == fleet.StateRunning {
				want += m.Footprint()
			}
		}
		leaked += h.Fleet().ReservedBytes() - want
	}
	for _, h := range c.RetiredHosts() {
		leaked += h.Fleet().ReservedBytes()
	}
	return leaked
}

func elasticClassRows(mode string, stats map[string]*memberStat) []ElasticClassRow {
	byClass := map[string]*ElasticClassRow{}
	waits := map[string][]time.Duration{}
	for _, st := range stats {
		row := byClass[st.class]
		if row == nil {
			row = &ElasticClassRow{Mode: mode, Class: st.class}
			byClass[st.class] = row
		}
		row.Launched++
		switch {
		case st.admitted:
			row.Admitted++
			waits[st.class] = append(waits[st.class], st.wait)
		default:
			row.Stalled++
		}
		if st.preempted {
			row.Preempted++
		}
	}
	var out []ElasticClassRow
	for _, class := range []string{"system", "persistent", "ephemeral"} {
		row := byClass[class]
		if row == nil {
			continue
		}
		row.P50 = fleet.LatencyPercentile(waits[class], 0.50)
		row.P95 = fleet.LatencyPercentile(waits[class], 0.95)
		out = append(out, *row)
	}
	return out
}

// RenderElastic prints the experiment.
func RenderElastic(res *ElasticResult) string {
	var t table
	t.row(fmt.Sprintf("# Elastic cluster: %d-nym burst on an initial pool of %d hosts (floor %d, ceiling %d) vs the same burst on a fixed %d-host pool",
		res.Nyms, res.InitialHosts, res.FloorHosts, res.MaxHosts, res.InitialHosts))
	t.row("mode", "class", "launched", "admitted", "stalled", "preempted", "p50-admit-s", "p95-admit-s")
	for _, r := range res.Rows {
		t.row(r.Mode, r.Class, fmt.Sprint(r.Launched), fmt.Sprint(r.Admitted),
			fmt.Sprint(r.Stalled), fmt.Sprint(r.Preempted),
			f1(r.P50.Seconds()), f1(r.P95.Seconds()))
	}
	t.row(fmt.Sprintf("# fixed: %d launches never admitted (pool saturated; preemption admits only higher classes)",
		res.FixedStalled))
	t.row(fmt.Sprintf("# elastic: %d grow(s) to %d hosts admitted the whole burst in %.0fs; quiesce drained %d host(s) back to %d in %.0fs (%d migrations, %.1f MB vault wire, %d bytes leaked)",
		res.GrowEvents, res.HostsPeak, res.BurstToAdmitted.Seconds(),
		res.ShrinkEvents, res.HostsEnd, res.DrainElapsed.Seconds(),
		res.DrainMoves, res.DrainWireMB, res.LeakedBytes))
	if len(res.ScaleLog) > 0 {
		line := "# hosts over time:"
		for _, ev := range res.ScaleLog {
			line += fmt.Sprintf(" [%.0fs %s->%d]", ev.At.Seconds(), ev.Kind, ev.Active)
		}
		t.row(line)
	}
	return t.String()
}
