package experiments

import (
	"fmt"
	"time"

	"nymix/internal/cluster"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// ShardScale is one row of the fleet-sharding experiment: a placement
// policy ramping N nyms across H hosts, with the rebalancer armed.
type ShardScale struct {
	Policy          string
	Nyms            int
	Hosts           int
	TimeToRunning   time.Duration // ramp start -> N running cluster-wide
	PeakQueued      int           // cluster-wide queue high-water mark
	Migrations      int           // rebalancer moves until convergence
	MigrationWireMB float64       // cross-host vault wire (saves + restores)
	PerHost         []int         // final running count per host
	MaxShare        float64       // hottest host's reserved share after settling
	MinShare        float64       // coldest host's reserved share after settling
	PeakRAMGiB      float64       // highest per-host physical peak
	Restarts        int
}

// ShardDefaults is the production scenario the issue names: 1024 nyms
// over four 64 GiB hosts.
const (
	ShardDefaultNyms  = 1024
	ShardDefaultHosts = 4
)

// FleetShards ramps nyms over hosts once per placement policy
// (least-reserved, then pack-first) with the hot-host rebalancer
// armed. Least-reserved should land balanced and migrate nothing;
// pack-first lands skewed and the rebalancer pays cross-host vault
// wire to spread it back out. Zero nyms/hosts take the defaults.
func FleetShards(seed uint64, nyms, hosts int) ([]ShardScale, error) {
	return FleetShardsOn(seed, nyms, hosts, hypervisor.Config{})
}

// FleetShardsOn runs the sharding experiment on explicitly sized
// hosts (zero config = the 64 GiB production profile). Tests use
// small hosts so the rebalancer trips at a handful of nyms.
func FleetShardsOn(seed uint64, nyms, hosts int, hostCfg hypervisor.Config) ([]ShardScale, error) {
	if nyms <= 0 {
		nyms = ShardDefaultNyms
	}
	if hosts <= 0 {
		hosts = ShardDefaultHosts
	}
	var out []ShardScale
	for i, policy := range []cluster.Policy{cluster.LeastReserved{}, cluster.PackFirst{}} {
		row, err := shardRampOne(seed+uint64(2000+i), nyms, hosts, policy, hostCfg)
		if err != nil {
			return nil, fmt.Errorf("shards %s: %w", policy.Name(), err)
		}
		out = append(out, row)
	}
	return out, nil
}

func shardRampOne(seed uint64, nyms, hosts int, policy cluster.Policy, hostCfg hypervisor.Config) (ShardScale, error) {
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	cfg := ShardClusterConfig(hosts, policy)
	if hostCfg.RAMBytes != 0 || hostCfg.CPU.Cores != 0 {
		cfg.HostConfig = hostCfg
	}
	c, err := cluster.New(eng, world, cfg)
	if err != nil {
		return ShardScale{}, err
	}
	row := ShardScale{Policy: policy.Name(), Nyms: nyms, Hosts: hosts}
	err = runProc(eng, "shard-ramp", func(p *sim.Proc) error {
		t0 := p.Now()
		if err := c.LaunchAll(FleetSpecs(nyms)); err != nil {
			return err
		}
		if err := c.AwaitRunning(p, nyms); err != nil {
			return err
		}
		row.TimeToRunning = p.Now() - t0
		return nil
	})
	if err != nil {
		return ShardScale{}, err
	}
	// runProc drains the engine, so the rebalancer has converged (no
	// hot host with a cold destination remains) before stats are read.
	st := c.Snapshot()
	row.PeakQueued = st.PeakQueued
	row.Migrations = st.Migrations
	row.MigrationWireMB = float64(st.MigrationWireBytes) / (1 << 20)
	row.PerHost = st.PerHostRunning
	row.PeakRAMGiB = float64(st.PeakRAMBytes) / (1 << 30)
	for i, share := range st.PerHostShare {
		if i == 0 || share > row.MaxShare {
			row.MaxShare = share
		}
		if i == 0 || share < row.MinShare {
			row.MinShare = share
		}
	}
	for _, h := range c.Hosts() {
		for _, m := range h.Fleet().Members() {
			row.Restarts += m.Restarts()
		}
	}
	return row, nil
}

// ShardClusterConfig is the cluster the sharding experiment (and the
// nymixctl demo) runs: 64 GiB / 16-core hosts, density-tuned nymboxes
// (FleetNymOptions), and a rebalancer that wakes when any host's
// reserved share passes 85%.
func ShardClusterConfig(hosts int, policy cluster.Policy) cluster.Config {
	return cluster.Config{
		Hosts:  hosts,
		Policy: policy,
		Rebalance: cluster.RebalanceConfig{
			Enabled:         true,
			Interval:        30 * time.Second,
			HotShare:        0.85,
			ColdShare:       0.6,
			MaxMovesPerPass: 8,
		},
	}
}

// RenderFleetShards prints the experiment.
func RenderFleetShards(rows []ShardScale) string {
	var t table
	if len(rows) > 0 {
		t.row(fmt.Sprintf("# Fleet sharding: %d nyms over %d hosts, per placement policy (rebalancer armed)",
			rows[0].Nyms, rows[0].Hosts))
	}
	t.row("policy", "ramp-s", "peak-queue", "migrations", "mig-wire-MB", "per-host", "share-spread", "peakRAM-GiB", "restarts")
	for _, r := range rows {
		t.row(r.Policy, f1(r.TimeToRunning.Seconds()), fmt.Sprint(r.PeakQueued),
			fmt.Sprint(r.Migrations), f1(r.MigrationWireMB), fmt.Sprint(r.PerHost),
			fmt.Sprintf("%.2f-%.2f", r.MinShare, r.MaxShare),
			f1(r.PeakRAMGiB), fmt.Sprint(r.Restarts))
	}
	if len(rows) == 2 {
		t.row(fmt.Sprintf("# pack-first needed %d vault migrations (%.1f MB cross-host) to spread what least-reserved placed evenly for free",
			rows[1].Migrations, rows[1].MigrationWireMB))
	}
	return t.String()
}
