package experiments

import (
	"fmt"
	"time"

	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/sim"
	"nymix/internal/tracker"
	"nymix/internal/webworld"
)

// The anonymity-vs-cost frontier: every transport backend run over the
// identical seeded browsing workload (two pseudonyms, the same site
// list, the same rig seed), measured on four axes — fetch latency,
// wire overhead, what an idle hour costs on the uplink, and how much
// of the pseudonym population a log-aggregating tracker can link. The
// mixnet buys the strongest position on the linkability axis with
// constant-rate cover traffic, and the other three axes show exactly
// what that costs.

// frontierBackends are the transports compared, cheapest wire first.
var frontierBackends = []string{"incognito", "tor", "dissent", "sweet", "mixnet"}

// frontierSites is the per-pseudonym visit list. Both pseudonyms walk
// it in order, so every backend sees the same payload demand.
var frontierSites = []string{"bbc.co.uk", "slashdot.org", "espn.com"}

// frontierThinkTime separates consecutive visits: a user reads the
// page before clicking on. Demand-driven transports go quiet between
// fetches; the mixnet keeps paying its cover rate, which is exactly
// the wire-overhead difference the frontier is after.
const frontierThinkTime = 30 * time.Second

// MixnetFrontierRow is one backend's position on the frontier.
type MixnetFrontierRow struct {
	Backend         string  `json:"backend"`
	FetchP50Seconds float64 `json:"fetch_p50_seconds"`
	FetchP95Seconds float64 `json:"fetch_p95_seconds"`
	// WireOverheadRatio is uplink wire bytes moved during the active
	// browsing window divided by the payload bytes the browsers saw.
	// For the mixnet this includes the cover frames sent between
	// fetches — overhead a wire observer genuinely pays for.
	WireOverheadRatio float64 `json:"wire_overhead_ratio"`
	// IdleHourUplinkMB is the uplink tap delta over one simulated hour
	// with both nyms up and no browsing: the standing cover-traffic
	// bill, ~0 for demand-driven transports.
	IdleHourUplinkMB float64 `json:"idle_hour_uplink_mb"`
	// LinkedIdentities is the tracker's largest cluster over both
	// pseudonyms' visits (1 = fully unlinkable).
	LinkedIdentities int `json:"linked_identities"`
	// CoverMB is the cover traffic the transports self-reported
	// (mixnet only; 0 elsewhere).
	CoverMB float64 `json:"cover_mb"`
	// TapMatch is the double-entry check: the uplink NIC tap agrees
	// with the link's flow-detach ledger.
	TapMatch bool `json:"tap_match"`
}

// MixnetFrontierResult is the whole comparison.
type MixnetFrontierResult struct {
	Seed   uint64              `json:"seed"`
	Visits int                 `json:"visits_per_backend"`
	Rows   []MixnetFrontierRow `json:"rows"`
}

// MixnetFrontier runs the frontier experiment.
func MixnetFrontier(seed uint64) (*MixnetFrontierResult, error) {
	res := &MixnetFrontierResult{Seed: seed, Visits: 2 * len(frontierSites)}
	for _, backend := range frontierBackends {
		row, err := frontierRun(seed, backend)
		if err != nil {
			return nil, fmt.Errorf("frontier %s: %w", backend, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// frontierRun measures one backend on a fresh rig with the shared
// seed, so every backend faces the same world and the same workload.
func frontierRun(seed uint64, backend string) (*MixnetFrontierRow, error) {
	eng, world, mgr, err := newRig(seed + 900)
	if err != nil {
		return nil, err
	}
	row := &MixnetFrontierRow{Backend: backend}

	uplink := mgr.Host().Uplink()
	tap := uplink.NICFor(mgr.Host().Node()).WireTap()

	var lats []time.Duration
	var payload int64
	if err := runProc(eng, "frontier-"+backend, func(p *sim.Proc) error {
		alice, err := mgr.StartNym(p, "alice", core.Options{Anonymizer: backend})
		if err != nil {
			return err
		}
		bob, err := mgr.StartNym(p, "bob", core.Options{Anonymizer: backend})
		if err != nil {
			return err
		}

		// Active window: both pseudonyms walk the site list in order,
		// pausing to read between visits.
		activeStart := tap.Bytes()
		for i, site := range frontierSites {
			if i > 0 {
				p.Sleep(frontierThinkTime)
			}
			for _, nym := range []*core.Nym{alice, bob} {
				r, err := nym.Visit(p, site)
				if err != nil {
					return fmt.Errorf("visit %s: %w", site, err)
				}
				lats = append(lats, r.Elapsed)
				payload += r.Bytes
			}
		}
		active := tap.Bytes() - activeStart
		if payload > 0 {
			row.WireOverheadRatio = float64(active) / float64(payload)
		}

		// Idle hour: nothing browses, the wire keeps whatever standing
		// rate the transport imposes.
		idleStart := tap.Bytes()
		p.Sleep(time.Hour)
		row.IdleHourUplinkMB = float64(tap.Bytes()-idleStart) / (1 << 20)

		for _, nym := range []*core.Nym{alice, bob} {
			if cov, ok := nym.Anonymizer().(interface{ CoverWireBytes() int64 }); ok {
				row.CoverMB += float64(cov.CoverWireBytes()) / (1 << 20)
			}
			if err := mgr.TerminateNym(p, nym); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	row.FetchP50Seconds = fleet.LatencyPercentile(lats, 0.50).Seconds()
	row.FetchP95Seconds = fleet.LatencyPercentile(lats, 0.95).Seconds()
	clusters := tracker.Link(frontierAdversary(world), append(world.AllVisits(), world.TrackerLog()...))
	row.LinkedIdentities = tracker.LargestCluster(clusters)
	row.TapMatch = diff64(uplink.WireBytesTotal(), uplink.LedgerBytesTotal()) <= 1
	return row, nil
}

// frontierAdversary marks every piece of shared anonymizer
// infrastructure — Tor relays, Dissent servers, the mix cascade, the
// SWEET mail path — as addresses that never link. What remains
// identifying is exactly what each backend actually exposes: the
// incognito proxy exits from the user's own host address.
func frontierAdversary(world *webworld.World) tracker.Config {
	cfg := tracker.DefaultConfig()
	for _, r := range world.Relays() {
		cfg.SharedAddrs[r.NodeName] = true
	}
	for _, s := range world.DissentServers() {
		cfg.SharedAddrs[s] = true
	}
	for _, m := range world.MixCascade() {
		cfg.SharedAddrs[m] = true
	}
	cfg.SharedAddrs[world.MailGateway().Name()] = true
	cfg.SharedAddrs[world.SweetProxy().Name()] = true
	return cfg
}

// RenderMixnetFrontier prints the frontier table.
func RenderMixnetFrontier(r *MixnetFrontierResult) string {
	var t table
	t.row("# Anonymity-vs-cost frontier: one workload, five transports")
	t.row("backend", "fetch_p50_s", "fetch_p95_s", "wire_overhead", "idle_hr_mb", "linked", "cover_mb")
	for _, row := range r.Rows {
		t.row(row.Backend, f1(row.FetchP50Seconds), f1(row.FetchP95Seconds),
			fmt.Sprintf("%.2fx", row.WireOverheadRatio), f1(row.IdleHourUplinkMB),
			fmt.Sprint(row.LinkedIdentities), f1(row.CoverMB))
	}
	return t.String()
}
