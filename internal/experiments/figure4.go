package experiments

import (
	"fmt"

	"nymix/internal/core"
	"nymix/internal/guestos"
	"nymix/internal/sim"
	"nymix/internal/workload"
)

// Figure4Row is one point of the CPU experiment: k nyms running
// Peacekeeper simultaneously (k=0 is the native run).
type Figure4Row struct {
	Nyms        int
	Accumulated float64 // sum of per-nym scores (the "Actual" series)
	Expected    float64 // single-nym score x min(k, cores): perfect
	// parallelism on physical cores without the SMT bonus
	PerNym float64
}

// peacekeeperRAM: the paper raised AnonVM RAM to ~1 GB because
// "certain experiments with Peacekeeper consume too much memory
// causing Chrome to crash".
const peacekeeperRAM = 1024 * guestos.MiB

// Figure4 reproduces the Peacekeeper experiment (section 5.2) for
// k = 0 (native) through 8 concurrent nyms.
func Figure4(seed uint64) ([]Figure4Row, error) {
	var rows []Figure4Row
	var singleNym float64
	for k := 0; k <= 8; k++ {
		eng, _, mgr, err := newRig(seed + uint64(k))
		if err != nil {
			return nil, err
		}
		if k == 0 {
			var native float64
			if err := runProc(eng, "fig4-native", func(p *sim.Proc) error {
				native = workload.RunPeacekeeperNative(p, mgr.Host())
				return nil
			}); err != nil {
				return nil, err
			}
			rows = append(rows, Figure4Row{Nyms: 0, Accumulated: native, Expected: native, PerNym: native})
			continue
		}
		var scores []float64
		err = runProc(eng, "fig4", func(p *sim.Proc) error {
			var nyms []*core.Nym
			for i := 0; i < k; i++ {
				nym, err := mgr.StartNym(p, fmt.Sprintf("pk-%d", i), core.Options{AnonRAM: peacekeeperRAM})
				if err != nil {
					return err
				}
				nyms = append(nyms, nym)
			}
			// Launch every benchmark before awaiting any, so all k
			// contend for the chip simultaneously.
			var futs []*sim.Future[float64]
			for _, nym := range nyms {
				fut, err := workload.StartPeacekeeperVM(mgr.Host(), nym.AnonVM())
				if err != nil {
					return err
				}
				futs = append(futs, fut)
			}
			for _, fut := range futs {
				score, err := sim.Await(p, fut)
				if err != nil {
					return err
				}
				scores = append(scores, score)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, s := range scores {
			sum += s
		}
		if k == 1 {
			singleNym = sum
		}
		cores := mgr.Host().CPU().Config().Cores
		expected := singleNym * float64(min(k, cores))
		rows = append(rows, Figure4Row{
			Nyms:        k,
			Accumulated: sum,
			Expected:    expected,
			PerNym:      sum / float64(k),
		})
	}
	return rows, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RenderFigure4 prints the series.
func RenderFigure4(rows []Figure4Row) string {
	var t table
	t.row("# Figure 4: accumulated Peacekeeper score vs. parallel pseudonyms (0 = native)")
	t.row("nyms", "actual", "expected", "per_nym")
	for _, r := range rows {
		t.row(fmt.Sprint(r.Nyms), f0(r.Accumulated), f0(r.Expected), f0(r.PerNym))
	}
	return t.String()
}
