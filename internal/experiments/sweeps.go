package experiments

import (
	"fmt"
	"time"

	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/guestos"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// SweepMode is the telemetry of one steady-state sweep run — the
// scheduled (dirty-skipping) checkpoint daemon or the naive
// save-everything sweep on the identical workload.
type SweepMode struct {
	Mode           string // "scheduled" or "naive"
	Sweeps         int
	Backoffs       int
	Saves          int
	Skips          int
	Errors         int
	UploadMB       float64 // vault bytes shipped
	LoginMB        float64 // per-provider session setup wire
	WireMB         float64 // upload + login: total checkpoint wire
	DirtySkipRatio float64
	LatencyP50     time.Duration // per-sweep latency percentiles
	LatencyP95     time.Duration
}

// SweepSteady is the steady-state checkpoint-sweep experiment: an
// all-persistent fleet is ramped, cold-saved, and then lives through
// `rounds` sweep intervals of light, occasional browsing while the
// sweep scheduler checkpoints on its interval. The identical workload
// is run twice from the same seed — once with dirty-skip, once saving
// everything — and the wire bills are compared. WireFrac is the
// headline: what fraction of the naive save-everything wire the
// scheduled sweeps actually shipped.
type SweepSteady struct {
	Nyms       int
	Rounds     int
	Interval   time.Duration
	ColdSaveMB float64 // the initial full checkpoint (identical in both runs)
	Scheduled  SweepMode
	Naive      SweepMode
	WireFrac   float64 // Scheduled.WireMB / Naive.WireMB
}

// SweepInterval is the scheduler period the experiment models.
const SweepInterval = 30 * time.Second

// sweepBrowseNyms is how many nyms browse in a browse round.
const sweepBrowseNyms = 1

// sweepBrowseRound reports whether steady-state round r is a browse
// round: most intervals pass with no mutation at all (a checkpoint
// cadence of tens of seconds against a user who touches a page every
// few minutes), which is exactly the regime dirty-skip exists for.
func sweepBrowseRound(r int) bool { return r%4 == 2 }

// SweepSpecs builds the all-persistent, density-tuned fleet the sweep
// experiment (and the nymixctl demo) runs: every member's state is
// durable, so every member is eligible for every sweep.
func SweepSpecs(n int) []fleet.Spec {
	specs := make([]fleet.Spec, n)
	for i := range specs {
		name := fmt.Sprintf("sweep%03d", i)
		specs[i] = fleet.Spec{Name: name, Opts: core.Options{
			Model:     core.ModelPersistent,
			GuardSeed: name,
			AnonRAM:   96 * guestos.MiB,
			AnonDisk:  32 * guestos.MiB,
			CommRAM:   48 * guestos.MiB,
			CommDisk:  8 * guestos.MiB,
		}}
	}
	return specs
}

// SweepSteadyState runs the experiment at the given fleet size and
// steady-state round count (defaults 32 nyms, 8 rounds).
func SweepSteadyState(seed uint64, nyms, rounds int) (SweepSteady, error) {
	if nyms <= 0 {
		nyms = 32
	}
	if rounds <= 0 {
		rounds = 8
	}
	sched, coldMB, err := sweepRun(seed, nyms, rounds, false)
	if err != nil {
		return SweepSteady{}, fmt.Errorf("scheduled run: %w", err)
	}
	naive, _, err := sweepRun(seed, nyms, rounds, true)
	if err != nil {
		return SweepSteady{}, fmt.Errorf("naive run: %w", err)
	}
	res := SweepSteady{
		Nyms:       nyms,
		Rounds:     rounds,
		Interval:   SweepInterval,
		ColdSaveMB: coldMB,
		Scheduled:  sched,
		Naive:      naive,
	}
	if naive.WireMB > 0 {
		res.WireFrac = sched.WireMB / naive.WireMB
	}
	return res, nil
}

// sweepRun executes one mode of the workload: ramp, cold save, then
// `rounds` sweep intervals with occasional browsing while the sweep
// scheduler runs.
func sweepRun(seed uint64, n, rounds int, saveAll bool) (SweepMode, float64, error) {
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, FleetHostConfig())
	if err != nil {
		return SweepMode{}, 0, err
	}
	o := fleet.New(mgr, fleet.Config{Restart: fleet.DefaultRestartPolicy()})
	mode := SweepMode{Mode: "scheduled"}
	if saveAll {
		mode.Mode = "naive"
	}
	var coldMB float64
	err = runProc(eng, "sweep-steady", func(p *sim.Proc) error {
		if _, err := o.LaunchAll(SweepSpecs(n)); err != nil {
			return err
		}
		if err := o.AwaitRunning(p, n); err != nil {
			return err
		}
		cold, err := o.SaveSweep(p, "fleet-pw", FleetVaultDest)
		if err != nil {
			return err
		}
		coldMB = float64(cold.UploadedBytes) / float64(guestos.MiB)

		if err := o.StartSweeps(fleet.SweepConfig{
			Interval: SweepInterval,
			Password: "fleet-pw",
			DestFor:  FleetVaultDest,
			SaveAll:  saveAll,
		}); err != nil {
			return err
		}
		members := o.Members()
		for r := 0; r < rounds; r++ {
			if sweepBrowseRound(r) {
				for k := 0; k < sweepBrowseNyms; k++ {
					m := members[(r*sweepBrowseNyms+k)%n]
					if m.Nym() == nil {
						continue
					}
					if _, err := m.Nym().Visit(p, "twitter.com"); err != nil {
						return err
					}
				}
			}
			p.Sleep(SweepInterval)
		}
		o.StopSweeps()
		o.AwaitSweepsIdle(p)
		return o.StopAll(p)
	})
	if err != nil {
		return mode, 0, err
	}
	rep := o.SweepReport()
	mode.Sweeps = rep.Sweeps
	mode.Backoffs = rep.Backoffs
	mode.Saves = rep.Saves
	mode.Skips = rep.Skips
	mode.Errors = rep.Errors
	mode.UploadMB = float64(rep.UploadedBytes) / float64(guestos.MiB)
	mode.LoginMB = float64(rep.LoginBytes) / float64(guestos.MiB)
	mode.WireMB = float64(rep.WireBytes()) / float64(guestos.MiB)
	mode.DirtySkipRatio = rep.DirtySkipRatio()
	mode.LatencyP50 = rep.LatencyP50
	mode.LatencyP95 = rep.LatencyP95
	return mode, coldMB, nil
}

// RenderSweepSteadyState prints the experiment.
func RenderSweepSteadyState(res SweepSteady) string {
	var t table
	t.row(fmt.Sprintf("# Steady-state checkpoint sweeps: %d persistent nyms, %d rounds at %s",
		res.Nyms, res.Rounds, res.Interval))
	t.row(fmt.Sprintf("# cold full checkpoint: %.1f MB (identical in both runs)", res.ColdSaveMB))
	t.row("mode", "sweeps", "saves", "skips", "skip-ratio", "upload-MB", "login-MB", "wire-MB", "p50-s", "p95-s")
	for _, m := range []SweepMode{res.Scheduled, res.Naive} {
		t.row(m.Mode, fmt.Sprint(m.Sweeps), fmt.Sprint(m.Saves), fmt.Sprint(m.Skips),
			fmt.Sprintf("%.3f", m.DirtySkipRatio), f1(m.UploadMB), f1(m.LoginMB), f1(m.WireMB),
			f1(m.LatencyP50.Seconds()), f1(m.LatencyP95.Seconds()))
	}
	t.row(fmt.Sprintf("# scheduled sweeps shipped %.1f MB vs %.1f MB naive save-everything: %.1f%% of the naive wire",
		res.Scheduled.WireMB, res.Naive.WireMB, 100*res.WireFrac))
	return t.String()
}
