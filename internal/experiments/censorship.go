package experiments

import (
	"fmt"
	"sort"

	"nymix/internal/core"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
)

// The censorship rerun, measured: instead of asserting a forwarding
// policy (the original examples/censorship demo), the state ISP now
// runs a DPIEngine on the host uplink. The experiment measures what
// the censor actually did — flows dropped and throttled per wire
// protocol, bytes affected — and what each escape hatch cost: a
// bridged (StegoTorus-style, wire shows HTTPS) nym under drop-only
// and under drop+throttle rules, and SWEET over SMTP when everything
// but mail is squeezed. Ground truth again comes from the fabric: the
// uplink WireTap must agree with the link's flow-detach ledger.

// censorThrottleRate is the censor's HTTPS rate cap in bytes/s (2
// Mbit/s) once it escalates from dropping Tor to also squeezing
// encrypted web traffic.
const censorThrottleRate = 256e3

// CensorDPIResult is the measured censorship rerun.
type CensorDPIResult struct {
	Seed uint64 `json:"seed"`

	// Phase 0: no censor yet — the baseline bridged fetch.
	BaselineFetchSeconds float64 `json:"baseline_fetch_seconds"`

	// Phase 1: DPI drops "tor". Plain Tor cannot bootstrap; the
	// bridged nym (wire shows "https") is untouched.
	PlainTorBlocked     bool    `json:"plain_tor_blocked"`
	PlainTorCode        string  `json:"plain_tor_code"`
	PlainTorCensored    bool    `json:"plain_tor_censored"` // chain carries vnet.censored
	BridgedFetchSeconds float64 `json:"bridged_fetch_seconds"`

	// Phase 2: the censor escalates — drop "tor", throttle "https".
	// The bridge still works, measurably slower.
	ThrottledFetchSeconds float64 `json:"throttled_fetch_seconds"`

	// Phase 3: SWEET over SMTP rides below both rules.
	SweetFetchSeconds float64 `json:"sweet_fetch_seconds"`

	// Measured censor activity (DPIEngine counters).
	DroppedFlows     int      `json:"dropped_flows"`
	DroppedMB        float64  `json:"dropped_mb"`
	ThrottledFlows   int      `json:"throttled_flows"`
	ThrottledMB      float64  `json:"throttled_mb"`
	RuledProtos      []string `json:"ruled_protos"`
	CaptureProtos    []string `json:"capture_protos"` // what the censor's capture saw on the wire
	CaptureSawTor    bool     `json:"capture_saw_tor"`
	BridgedExitIsTor bool     `json:"bridged_exit_is_tor"`

	// Uplink double-entry check.
	TapMB    float64 `json:"tap_mb"`
	LedgerMB float64 `json:"ledger_mb"`
	TapMatch bool    `json:"tap_match"`
}

// CensorshipDPI runs the measured censorship scenario.
func CensorshipDPI(seed uint64) (*CensorDPIResult, error) {
	eng, _, mgr, err := newRig(seed + 800)
	if err != nil {
		return nil, err
	}
	res := &CensorDPIResult{Seed: seed}

	uplink := mgr.Host().Uplink()
	tap := uplink.NICFor(mgr.Host().Node()).WireTap()
	cap := uplink.Tap()
	net := mgr.Host().Net()

	// Two censor postures over the run: drop-only, then an escalated
	// engine that also throttles. Counters are summed over both.
	dropDPI := vnet.NewDPI(vnet.DropProto("tor"))
	escalatedDPI := vnet.NewDPI(vnet.FirstMatch(
		vnet.DropProto("tor"),
		vnet.ThrottleProto(censorThrottleRate, "https"),
	))

	if err := runProc(eng, "censorship-dpi", func(p *sim.Proc) error {
		// Phase 0: baseline, censor not yet deployed.
		base, err := mgr.StartNym(p, "baseline", core.Options{Anonymizer: "tor-bridge"})
		if err != nil {
			return fmt.Errorf("baseline nym: %w", err)
		}
		r0, err := base.Visit(p, "twitter.com")
		if err != nil {
			return fmt.Errorf("baseline visit: %w", err)
		}
		res.BaselineFetchSeconds = r0.Elapsed.Seconds()
		if err := mgr.TerminateNym(p, base); err != nil {
			return err
		}

		// Phase 1: the ISP deploys DPI at the uplink, dropping Tor.
		uplink.SetDPI(net, dropDPI)
		if _, err := mgr.StartNym(p, "plain-tor", core.Options{Anonymizer: "tor"}); err != nil {
			res.PlainTorBlocked = true
			res.PlainTorCode = string(nymerr.Classify(err))
			res.PlainTorCensored = nymerr.HasCode(err, vnet.CodeCensored)
		} else {
			return fmt.Errorf("plain tor bootstrapped through the censor")
		}

		bridged, err := mgr.StartNym(p, "bridged", core.Options{Anonymizer: "tor-bridge"})
		if err != nil {
			return fmt.Errorf("bridged nym: %w", err)
		}
		r1, err := bridged.Visit(p, "twitter.com")
		if err != nil {
			return fmt.Errorf("bridged visit: %w", err)
		}
		res.BridgedFetchSeconds = r1.Elapsed.Seconds()
		res.BridgedExitIsTor = bridged.Anonymizer().ExitIdentity() != ""
		if err := mgr.TerminateNym(p, bridged); err != nil {
			return err
		}

		// Phase 2: the censor escalates to throttling encrypted web.
		uplink.SetDPI(net, escalatedDPI)
		throttled, err := mgr.StartNym(p, "bridged-throttled", core.Options{Anonymizer: "tor-bridge"})
		if err != nil {
			return fmt.Errorf("throttled nym: %w", err)
		}
		r2, err := throttled.Visit(p, "twitter.com")
		if err != nil {
			return fmt.Errorf("throttled visit: %w", err)
		}
		res.ThrottledFetchSeconds = r2.Elapsed.Seconds()
		if err := mgr.TerminateNym(p, throttled); err != nil {
			return err
		}

		// Phase 3: web over email rides below both rules.
		sweet, err := mgr.StartNym(p, "mail-tunnel", core.Options{Anonymizer: "sweet"})
		if err != nil {
			return fmt.Errorf("sweet nym: %w", err)
		}
		r3, err := sweet.Visit(p, "bbc.co.uk")
		if err != nil {
			return fmt.Errorf("sweet visit: %w", err)
		}
		res.SweetFetchSeconds = r3.Elapsed.Seconds()
		return mgr.TerminateNym(p, sweet)
	}); err != nil {
		return nil, err
	}

	const mb = float64(1 << 20)
	ruled := map[string]bool{}
	for _, e := range []*vnet.DPIEngine{dropDPI, escalatedDPI} {
		res.DroppedFlows += e.Dropped()
		res.ThrottledFlows += e.Throttled()
		for _, proto := range e.Protos() {
			s := e.Stat(proto)
			res.DroppedMB += float64(s.DroppedBytes) / mb
			res.ThrottledMB += float64(s.ThrottledBytes) / mb
			ruled[proto] = true
		}
	}
	for proto := range ruled {
		res.RuledProtos = append(res.RuledProtos, proto)
	}
	sort.Strings(res.RuledProtos)
	res.CaptureProtos = cap.Protos()
	for _, proto := range res.CaptureProtos {
		if proto == "tor" {
			res.CaptureSawTor = true
		}
	}
	tapB := tap.Bytes()
	ledgerB := uplink.LedgerBytesTotal()
	res.TapMB = float64(tapB) / mb
	res.LedgerMB = float64(ledgerB) / mb
	res.TapMatch = diff64(tapB, ledgerB) <= 1 && diff64(tapB, uplink.WireBytesTotal()) <= 1
	return res, nil
}

// RenderCensorshipDPI prints the measured censorship rerun.
func RenderCensorshipDPI(r *CensorDPIResult) string {
	var t table
	t.row("# Censorship, measured: DPI engine on the host uplink")
	t.row(fmt.Sprintf("baseline bridged fetch (no censor):     %5.1f s", r.BaselineFetchSeconds))
	t.row(fmt.Sprintf("plain tor under drop rule:              blocked=%v code=%s (vnet.censored in chain=%v)",
		r.PlainTorBlocked, r.PlainTorCode, r.PlainTorCensored))
	t.row(fmt.Sprintf("bridged fetch under drop rule:          %5.1f s (wire shows https)", r.BridgedFetchSeconds))
	t.row(fmt.Sprintf("bridged fetch under drop+throttle:      %5.1f s (https capped at %.0f KB/s)",
		r.ThrottledFetchSeconds, censorThrottleRate/1e3))
	t.row(fmt.Sprintf("sweet fetch over smtp:                  %5.1f s (slow, but uncensorable)", r.SweetFetchSeconds))
	t.row(fmt.Sprintf("censor counters: dropped %d flows (%.2f MB), throttled %d flows (%.1f MB), ruled protos %v",
		r.DroppedFlows, r.DroppedMB, r.ThrottledFlows, r.ThrottledMB, r.RuledProtos))
	t.row(fmt.Sprintf("censor capture protos %v (saw tor=%v); bridged exit is a tor relay=%v",
		r.CaptureProtos, r.CaptureSawTor, r.BridgedExitIsTor))
	t.row(fmt.Sprintf("uplink tap %.1f MB vs ledger %.1f MB, match=%v", r.TapMB, r.LedgerMB, r.TapMatch))
	return t.String()
}
