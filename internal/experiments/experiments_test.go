package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"nymix/internal/core"
	"nymix/internal/cpusched"
	"nymix/internal/hypervisor"
)

// The tests here assert the DESIGN.md shape criteria: the qualitative
// claims each paper figure makes must hold in the reproduction.

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Slope: marginal cost per nymbox lands near the ~600 MB claim.
	slope := (rows[7].UsedAfterMB - rows[0].UsedAfterMB) / 7
	if slope < 450 || slope > 700 {
		t.Fatalf("per-nymbox slope = %.0f MB, want ~600", slope)
	}
	// Used memory stays at or below the expected dashed line (KSM can
	// only help).
	for _, r := range rows {
		if r.UsedAfterMB > r.ExpectedMB*1.02 {
			t.Fatalf("nyms=%d used %.0f exceeds expected %.0f", r.Nyms, r.UsedAfterMB, r.ExpectedMB)
		}
	}
	// Shared pages grow monotonically with more identical VMs.
	for i := 1; i < len(rows); i++ {
		if rows[i].SharedAfter < rows[i-1].SharedAfter {
			t.Fatalf("shared pages shrank at %d nyms", rows[i].Nyms)
		}
	}
	// "KSM manages to reduce overall memory usage resulting in over 5%
	// saving at 8 nyms."
	last := rows[7]
	saving := last.SavedMB / (last.UsedAfterMB + last.SavedMB)
	if saving < 0.05 {
		t.Fatalf("KSM saving at 8 nyms = %.1f%%, want > 5%%", 100*saving)
	}
	// Most memory is claimed at initialization, not during interaction.
	for _, r := range rows {
		init := r.UsedBeforeMB
		growth := r.UsedAfterMB - r.UsedBeforeMB
		if growth > init {
			t.Fatalf("nyms=%d interaction growth %.0f exceeds init %.0f", r.Nyms, growth, init)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	rows, err := Figure4(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	native := rows[0].Accumulated
	single := rows[1].Accumulated
	// ~20% virtualization overhead.
	overhead := 1 - single/native
	if overhead < 0.15 || overhead > 0.25 {
		t.Fatalf("virtualization overhead = %.1f%%, want ~20%%", 100*overhead)
	}
	// Accumulated throughput is non-decreasing in k.
	for k := 2; k <= 8; k++ {
		if rows[k].Accumulated < rows[k-1].Accumulated*0.99 {
			t.Fatalf("accumulated fell at k=%d", k)
		}
	}
	// Beyond the core count, actual outperforms the no-SMT expectation.
	for k := 5; k <= 8; k++ {
		if rows[k].Accumulated <= rows[k].Expected {
			t.Fatalf("k=%d: actual %.0f <= expected %.0f (SMT bonus missing)",
				k, rows[k].Accumulated, rows[k].Expected)
		}
	}
	// Within the core count, actual tracks expected.
	for k := 1; k <= 4; k++ {
		if math.Abs(rows[k].Accumulated-rows[k].Expected)/rows[k].Expected > 0.05 {
			t.Fatalf("k=%d: actual %.0f deviates from expected %.0f",
				k, rows[k].Accumulated, rows[k].Expected)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Fixed Tor overhead ~12%.
	oh := TorFixedOverhead(rows)
	if oh < 0.10 || oh > 0.20 {
		t.Fatalf("Tor overhead = %.1f%%, want ~12%%", 100*oh)
	}
	// Near-linear scaling: actual within 15% of ideal at every k.
	for _, r := range rows {
		if math.Abs(r.ActualSec-r.IdealSec)/r.IdealSec > 0.15 {
			t.Fatalf("k=%d: actual %.0fs vs ideal %.0fs", r.Nyms, r.ActualSec, r.IdealSec)
		}
	}
	// Actual is never faster than ideal (shared bottleneck).
	for _, r := range rows[1:] {
		if r.ActualSec < r.IdealSec*0.98 {
			t.Fatalf("k=%d beat the ideal: %.0f < %.0f", r.Nyms, r.ActualSec, r.IdealSec)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	series, err := Figure6(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	bySite := map[string]Figure6Series{}
	for _, s := range series {
		if len(s.SizesMB) != 10 {
			t.Fatalf("%s has %d cycles", s.Site, len(s.SizesMB))
		}
		bySite[s.Site] = s
		// Monotone growth for persistent nyms.
		for c := 1; c < len(s.SizesMB); c++ {
			if s.SizesMB[c] < s.SizesMB[c-1]*0.99 {
				t.Fatalf("%s shrank at cycle %d", s.Site, c+1)
			}
		}
		// AnonVM dominates the archive (~85% in the paper).
		if s.AnonShare < 0.7 {
			t.Fatalf("%s AnonVM share = %.0f%%, want dominant", s.Site, 100*s.AnonShare)
		}
		// Sizes plot within the figure's 0-60 MB axis.
		final := s.SizesMB[9]
		if final <= 0 || final > 60 {
			t.Fatalf("%s final size = %.1f MB", s.Site, final)
		}
	}
	// Site ordering: Facebook heaviest, Tor Blog lightest.
	if !(bySite["facebook.com"].SizesMB[9] > bySite["gmail.com"].SizesMB[9]) {
		t.Fatal("facebook should out-grow gmail")
	}
	if !(bySite["twitter.com"].SizesMB[9] > bySite["blog.torproject.org"].SizesMB[9]) {
		t.Fatal("twitter should out-grow the tor blog")
	}
	// First save is the smallest — "a single save cycle represents
	// usage similar to a pre-configured nym, which tends to be small";
	// heavy sites grow substantially past it.
	for _, s := range series {
		if s.SizesMB[0] >= s.SizesMB[9]*0.85 {
			t.Fatalf("%s first save %.1f not smaller than final %.1f", s.Site, s.SizesMB[0], s.SizesMB[9])
		}
	}
	if fb := bySite["facebook.com"]; fb.SizesMB[0] > fb.SizesMB[9]/2 {
		t.Fatalf("facebook first save %.1f should be under half of final %.1f", fb.SizesMB[0], fb.SizesMB[9])
	}
}

func TestFigure7Shape(t *testing.T) {
	rows, err := Figure7(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byConfig := map[string]Figure7Row{}
	for _, r := range rows {
		byConfig[r.Config] = r
	}
	fresh, pre, per := byConfig["fresh"], byConfig["pre-configured"], byConfig["persisted"]
	// Quasi-persistent nyms outperform ephemeral on Tor startup thanks
	// to stored guard + consensus state.
	if pre.StartTor >= fresh.StartTor {
		t.Fatalf("pre-configured Tor start %v !< fresh %v", pre.StartTor, fresh.StartTor)
	}
	if per.StartTor >= fresh.StartTor {
		t.Fatalf("persisted Tor start %v !< fresh %v", per.StartTor, fresh.StartTor)
	}
	// But they pay for the one-time ephemeral download nym.
	if pre.EphemeralNym <= 0 || per.EphemeralNym <= 0 {
		t.Fatal("quasi-persistent configs missing the ephemeral phase")
	}
	if fresh.EphemeralNym != 0 {
		t.Fatal("fresh config has an ephemeral phase")
	}
	// Abstract: nymboxes load within 15-25 seconds (fresh total).
	if total := fresh.Total().Seconds(); total < 15 || total > 25 {
		t.Fatalf("fresh total = %.1fs, want 15-25s", total)
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string][3]float64{
		"Windows Vista": {133.7, 37.7, 4.9},
		"Windows 7":     {129.3, 34.3, 4.5},
		"Windows 8":     {157.0, 58.7, 14},
	}
	for _, r := range rows {
		w, ok := want[r.Version]
		if !ok {
			t.Fatalf("unexpected version %q", r.Version)
		}
		if math.Abs(r.RepairS-w[0])/w[0] > 0.10 {
			t.Errorf("%s repair %.1f vs paper %.1f", r.Version, r.RepairS, w[0])
		}
		if math.Abs(r.BootS-w[1])/w[1] > 0.10 {
			t.Errorf("%s boot %.1f vs paper %.1f", r.Version, r.BootS, w[1])
		}
		if math.Abs(r.SizeMB-w[2])/w[2] > 0.20 {
			t.Errorf("%s size %.1f vs paper %.1f", r.Version, r.SizeMB, w[2])
		}
	}
}

func TestValidationPasses(t *testing.T) {
	report, err := Validation(7)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("validation failed:\n%s", RenderValidation(report))
	}
	for _, proto := range report.UplinkProtos {
		if proto != "dhcp" && proto != "tor" {
			t.Fatalf("uplink protocols = %v", report.UplinkProtos)
		}
	}
}

func TestAblationGuardExposureShape(t *testing.T) {
	rows := AblationGuardExposure(8, 0.05)
	for _, r := range rows {
		if r.Persistent != 0.05 {
			t.Fatalf("persistent exposure = %v", r.Persistent)
		}
		if r.Sessions > 1 && r.Rotating <= r.Persistent {
			t.Fatalf("sessions=%d rotating %v !> persistent %v", r.Sessions, r.Rotating, r.Persistent)
		}
		if math.Abs(r.MonteCarlo-r.Rotating) > 0.03 {
			t.Fatalf("MC %v deviates from analytic %v", r.MonteCarlo, r.Rotating)
		}
	}
}

func TestAblationStainingShape(t *testing.T) {
	rows, err := AblationStaining(9)
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[core.UsageModel]StainRow{}
	for _, r := range rows {
		byModel[r.Model] = r
	}
	if byModel[core.ModelEphemeral].StainSurvives {
		t.Fatal("stain survived an ephemeral nym")
	}
	if byModel[core.ModelPreconfigured].StainSurvives {
		t.Fatal("stain survived the pre-configured golden snapshot")
	}
	if !byModel[core.ModelPersistent].StainSurvives {
		t.Fatal("stain should survive in persistent mode")
	}
	if !byModel[core.ModelPersistent].SessionsLinked {
		t.Fatal("persistent stained sessions should be linkable")
	}
	if byModel[core.ModelEphemeral].SessionsLinked {
		t.Fatal("ephemeral sessions linked")
	}
}

func TestAblationLinkageShape(t *testing.T) {
	rows, err := AblationLinkage(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Strategy {
		case "nymix-per-role-nyms":
			if r.LargestCluster != 1 {
				t.Fatalf("nymix roles linked: cluster %d", r.LargestCluster)
			}
		case "single-browser-baseline":
			if r.LargestCluster < 3 {
				t.Fatalf("baseline roles not linked: cluster %d", r.LargestCluster)
			}
		}
	}
}

func TestAblationBuddiesShape(t *testing.T) {
	const floor = 4
	rows := AblationBuddies(11, floor, 12)
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	suppressedAny := false
	for i, r := range rows {
		// The gated set never falls below the floor.
		if r.GatedCandidates != 0 && r.GatedCandidates < floor {
			t.Fatalf("round %d: gated set %d < floor", r.Round, r.GatedCandidates)
		}
		// Both sets are non-increasing.
		if i > 0 {
			if r.UngatedCandidates > rows[i-1].UngatedCandidates {
				t.Fatalf("ungated set grew at round %d", r.Round)
			}
			if r.GatedCandidates > rows[i-1].GatedCandidates {
				t.Fatalf("gated set grew at round %d", r.Round)
			}
		}
		suppressedAny = suppressedAny || r.GatedSuppressed
	}
	last := rows[len(rows)-1]
	// Without Buddies the victim ends up nearly identified; with it the
	// floor holds and some posts were suppressed to pay for it.
	if last.UngatedCandidates >= floor {
		t.Fatalf("ungated set = %d, expected collapse below %d", last.UngatedCandidates, floor)
	}
	if last.GatedCandidates < floor {
		t.Fatalf("gated set = %d", last.GatedCandidates)
	}
	if !suppressedAny {
		t.Fatal("no posts suppressed despite shrinking population")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// The whole stack is a deterministic simulation: identical seeds
	// must reproduce identical results, bit for bit.
	a, err := Figure5(99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure5(99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Seed sensitivity: Table 1 carries measurement jitter, so distinct
	// seeds must differ. (Figure 5 is legitimately seed-insensitive:
	// fluid rates have no randomness.)
	t1a, err := Table1(99)
	if err != nil {
		t.Fatal(err)
	}
	t1b, err := Table1(100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t1a {
		if t1a[i] != t1b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical Table 1 — jitter is dead")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	f3, _ := Figure3(1)
	t1, _ := Table1(6)
	v, _ := Validation(7)
	for name, out := range map[string]string{
		"fig3":  RenderFigure3(f3),
		"tab1":  RenderTable1(t1),
		"valid": RenderValidation(v),
	} {
		if !strings.Contains(out, "#") || len(out) < 50 {
			t.Fatalf("%s render too small:\n%s", name, out)
		}
	}
}

func TestFleetShardsShape(t *testing.T) {
	// Small hosts so the rebalancer trips at test scale: a 6 GiB host
	// holds ~25 density-tuned nymboxes, so 24 nyms pack one host past
	// the 85% watermark while the other idles.
	rows, err := FleetShardsOn(5, 24, 2, hypervisor.Config{
		RAMBytes: 6 << 30,
		CPU:      cpusched.Config{Cores: 8, SMTFactor: 1.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	least, pack := rows[0], rows[1]
	if least.Policy != "least-reserved" || pack.Policy != "pack-first" {
		t.Fatalf("policies = %q/%q", least.Policy, pack.Policy)
	}
	for _, r := range rows {
		total := 0
		for _, n := range r.PerHost {
			total += n
		}
		if total != r.Nyms {
			t.Errorf("%s: %d of %d nyms running (%v)", r.Policy, total, r.Nyms, r.PerHost)
		}
		if r.Restarts != 0 {
			t.Errorf("%s: %d restarts", r.Policy, r.Restarts)
		}
		// The rebalancer converged: no host ends above the watermark.
		if r.MaxShare > 0.85+1e-9 {
			t.Errorf("%s: hottest host still at %.2f after rebalance", r.Policy, r.MaxShare)
		}
	}
	// Least-reserved spreads for free: even split, no migrations.
	if least.Migrations != 0 {
		t.Errorf("least-reserved migrated %d nyms", least.Migrations)
	}
	for i, n := range least.PerHost {
		if n != least.Nyms/least.Hosts {
			t.Errorf("least-reserved host %d runs %d, want even %v", i, n, least.PerHost)
		}
	}
	// Pack-first lands hot and pays vault wire to cool down.
	if pack.Migrations == 0 {
		t.Error("pack-first never triggered the rebalancer")
	}
	if pack.MigrationWireMB <= 0 {
		t.Error("migrations shipped no cross-host wire")
	}
	if pack.PerHost[0] <= pack.PerHost[1] {
		t.Errorf("pack-first placement not skewed: %v", pack.PerHost)
	}
}

func TestFleetRampUpShape(t *testing.T) {
	rows, err := FleetRampUp(5, 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Every nym reached Running with no restart-policy activity.
		if r.Restarts != 0 {
			t.Errorf("nyms=%d restarts = %d", r.Nyms, r.Restarts)
		}
		// Parallel pipelines beat the serial estimate comfortably.
		if r.TimeToRunning >= r.SerialEst/2 {
			t.Errorf("nyms=%d ramp %v vs serial %v: pipelines not overlapping",
				r.Nyms, r.TimeToRunning, r.SerialEst)
		}
		// Admission control held the host: the physical peak stays
		// under capacity and the reservation budget.
		if r.PeakRAMGiB > 64 {
			t.Errorf("nyms=%d peak RAM %.1f GiB exceeds the host", r.Nyms, r.PeakRAMGiB)
		}
		// Steady-state sweeps are deltas: a small fraction of what
		// monolithic re-uploads would ship.
		if r.SteadySaveMB > r.SaveBaseMB/4 {
			t.Errorf("nyms=%d steady sweep %.1f MB vs monolithic %.1f: dedup not engaged",
				r.Nyms, r.SteadySaveMB, r.SaveBaseMB)
		}
		if r.ColdSaveMB <= 0 || r.PeakCPUTasks <= 0 {
			t.Errorf("nyms=%d missing metrics: %+v", r.Nyms, r)
		}
	}
	// Tripling the fleet must not triple the ramp: admission pipelines
	// amortize startup.
	if rows[1].TimeToRunning >= 3*rows[0].TimeToRunning {
		t.Errorf("ramp scaled superlinearly: %v @8 vs %v @24",
			rows[0].TimeToRunning, rows[1].TimeToRunning)
	}
}

func TestElasticShape(t *testing.T) {
	// Small hosts so the pool scales at test size: a 2 GiB host holds
	// ~6 density-tuned nymboxes, so a 16-nym burst on an initial pool
	// of one forces two grows, and the quiesce leaves 4 high-priority
	// nyms to drain back to the floor.
	res, err := ElasticOn(5, 16, 1, hypervisor.Config{
		RAMBytes: 2 << 30,
		CPU:      cpusched.Config{Cores: 4, SMTFactor: 1.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 classes x 2 modes", len(res.Rows))
	}
	byMode := map[string]map[string]ElasticClassRow{"fixed": {}, "elastic": {}}
	for _, r := range res.Rows {
		byMode[r.Mode][r.Class] = r
	}
	// The elastic pool admits the entire burst; the fixed pool strands
	// the ephemeral tail.
	for class, r := range byMode["elastic"] {
		if r.Stalled != 0 {
			t.Errorf("elastic %s: %d launches stalled", class, r.Stalled)
		}
	}
	if res.FixedStalled == 0 {
		t.Error("fixed pool stranded nothing — the burst never saturated it")
	}
	if got := byMode["fixed"]["ephemeral"].Stalled; got != res.FixedStalled {
		t.Errorf("fixed stalls = %d, want all %d in the ephemeral class", got, res.FixedStalled)
	}
	// Priority admission on the fixed pool: the system class always
	// lands (preemption makes room).
	if r := byMode["fixed"]["system"]; r.Admitted != r.Launched {
		t.Errorf("fixed system class admitted %d of %d", r.Admitted, r.Launched)
	}
	// Scale-up happened and the drain returned to the floor with
	// nothing leaked.
	if res.GrowEvents == 0 {
		t.Error("no grow events despite a persisted queue")
	}
	if res.HostsPeak <= 1 {
		t.Errorf("hosts peak = %d, want growth past the initial pool", res.HostsPeak)
	}
	if res.HostsEnd != res.FloorHosts {
		t.Errorf("pool ended at %d hosts, want the floor %d", res.HostsEnd, res.FloorHosts)
	}
	if res.ShrinkEvents == 0 {
		t.Error("no shrink events despite the quiesce")
	}
	if res.DrainMoves == 0 {
		t.Error("drain migrated nothing — the retired hosts were already empty")
	}
	if res.DrainWireMB <= 0 {
		t.Error("drain migrations shipped no vault wire")
	}
	if res.LeakedBytes != 0 {
		t.Errorf("drain leaked %d reservation bytes", res.LeakedBytes)
	}
}

// TestFleetRampUpDeterministic is the determinism regression for the
// fleet stack: two runs of the ramp experiment from the same seed
// must produce byte-identical stats structs — any map-iteration or
// scheduling nondeterminism in the fleet/vault/cloud layers shows up
// here as a diff.
func TestFleetRampUpDeterministic(t *testing.T) {
	a, err := FleetRampUp(77, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetRampUp(77, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", a), fmt.Sprintf("%#v", b); got != want {
		t.Fatalf("same seed diverged:\nrun A: %s\nrun B: %s", want, got)
	}
	// Distinct seeds must actually move the measurements.
	c, err := FleetRampUp(78, 12)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", a) == fmt.Sprintf("%#v", c) {
		t.Fatal("different seeds produced identical fleet ramps — jitter is dead")
	}
}

// TestSweepSteadyStateShape sanity-checks the sweep experiment at a
// small size: the scheduled mode must skip most member-passes, ship
// strictly less wire than the naive mode, and report coherent latency
// percentiles.
func TestSweepSteadyStateShape(t *testing.T) {
	res, err := SweepSteadyState(5, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled.Sweeps == 0 || res.Naive.Sweeps == 0 {
		t.Fatalf("no sweeps completed: %+v", res)
	}
	if res.Scheduled.DirtySkipRatio < 0.8 {
		t.Errorf("dirty-skip ratio = %.3f, want > 0.8 on a mostly idle fleet", res.Scheduled.DirtySkipRatio)
	}
	if res.Naive.DirtySkipRatio != 0 {
		t.Errorf("naive mode skipped members: ratio %.3f", res.Naive.DirtySkipRatio)
	}
	if res.Scheduled.WireMB >= res.Naive.WireMB {
		t.Errorf("scheduled wire %.2f MB not below naive %.2f MB", res.Scheduled.WireMB, res.Naive.WireMB)
	}
	if res.WireFrac <= 0 || res.WireFrac >= 1 {
		t.Errorf("wire frac = %.3f, want in (0,1)", res.WireFrac)
	}
	if res.Naive.LatencyP95 < res.Naive.LatencyP50 || res.Naive.LatencyP50 <= 0 {
		t.Errorf("incoherent naive latency percentiles: p50=%v p95=%v", res.Naive.LatencyP50, res.Naive.LatencyP95)
	}
	out := RenderSweepSteadyState(res)
	if !strings.Contains(out, "skip-ratio") || !strings.Contains(out, "% of the naive wire") {
		t.Errorf("render missing headline fields:\n%s", out)
	}
}
