package experiments

import (
	"fmt"
	"time"

	"nymix/internal/core"
	"nymix/internal/cpusched"
	"nymix/internal/fleet"
	"nymix/internal/guestos"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// FleetSizes are the ramp targets of the fleet-scale experiment.
var FleetSizes = []int{16, 64, 256}

// FleetScale is one row of the fleet ramp experiment: a cold start of
// N concurrent nyms on one host, a fleet-wide cold checkpoint, a
// steady-state (delta) checkpoint after light browsing, and teardown.
type FleetScale struct {
	Nyms          int
	TimeToRunning time.Duration // ramp start -> all N Running
	SerialEst     time.Duration // N x the single-nym startup, for contrast
	ColdSaveMB    float64       // first sweep: full state of every persistent nym
	SteadySaveMB  float64       // second sweep: deltas only
	SaveBaseMB    float64       // monolithic re-upload cost of the second sweep
	PeakRAMGiB    float64       // host physical high-water mark
	RAMBudgetGiB  float64       // admissible reservation budget
	PeakCPUTasks  int           // cpusched concurrency high-water mark
	Restarts      int           // restart-policy activations (expect 0)
}

// FleetHostConfig is the production-profile box the fleet experiment
// models: a 64 GiB, 16-core server rather than the paper's 16 GiB
// desktop. The paper sized nymboxes for one user at a desk; a
// multi-user service packs hundreds per host.
func FleetHostConfig() hypervisor.Config {
	return hypervisor.Config{
		RAMBytes: 64 << 30,
		CPU:      cpusched.Config{Cores: 16, SMTFactor: 1.3},
	}
}

// FleetNymOptions is the density-tuned nymbox profile: a fleet host
// trades the paper's interactive-desktop sizing down so hundreds of
// nyms fit, keeping the CommVM/AnonVM split and per-nym models. Every
// fourth nym is persistent (with a seeded guard, section 3.5); the
// rest are ephemeral.
func FleetNymOptions(name string, i int) core.Options {
	opts := core.Options{
		AnonRAM:  96 * guestos.MiB,
		AnonDisk: 32 * guestos.MiB,
		CommRAM:  48 * guestos.MiB,
		CommDisk: 8 * guestos.MiB,
	}
	if i%4 == 0 {
		opts.Model = core.ModelPersistent
		opts.GuardSeed = name
	}
	return opts
}

// FleetSpecs builds the n-nym fleet the experiment (and the nymixctl
// demo) ramps, so the measured configuration exists in one place.
func FleetSpecs(n int) []fleet.Spec {
	specs := make([]fleet.Spec, n)
	for i := range specs {
		name := fmt.Sprintf("fleet%03d", i)
		specs[i] = fleet.Spec{Name: name, Opts: FleetNymOptions(name, i)}
	}
	return specs
}

// FleetRampUp measures fleet orchestration at each size in sizes
// (FleetSizes when empty): time to N running under RAM/CPU admission
// control, cold and steady-state staggered save sweeps, and host
// RAM/CPU high-water marks. Each size runs in a fresh world.
func FleetRampUp(seed uint64, sizes ...int) ([]FleetScale, error) {
	if len(sizes) == 0 {
		sizes = FleetSizes
	}
	var out []FleetScale
	for _, n := range sizes {
		row, err := fleetRampOne(seed+uint64(1000+n), n)
		if err != nil {
			return nil, fmt.Errorf("fleet ramp %d: %w", n, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func fleetRampOne(seed uint64, n int) (FleetScale, error) {
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, FleetHostConfig())
	if err != nil {
		return FleetScale{}, err
	}
	o := fleet.New(mgr, fleet.Config{Restart: fleet.DefaultRestartPolicy()})
	destFor := FleetVaultDest
	row := FleetScale{Nyms: n}
	err = runProc(eng, "fleet-ramp", func(p *sim.Proc) error {
		// Single-nym baseline on the same world, for the serial
		// estimate the parallel ramp is judged against.
		probe, err := mgr.StartNym(p, "probe", FleetNymOptions("probe", 1))
		if err != nil {
			return err
		}
		single := probe.Phases().BootVM + probe.Phases().StartAnon
		if err := mgr.TerminateNym(p, probe); err != nil {
			return err
		}
		row.SerialEst = time.Duration(n) * single

		t0 := p.Now()
		if _, err := o.LaunchAll(FleetSpecs(n)); err != nil {
			return err
		}
		if err := o.AwaitRunning(p, n); err != nil {
			return err
		}
		row.TimeToRunning = p.Now() - t0

		cold, err := o.SaveSweep(p, "fleet-pw", destFor)
		if err != nil {
			return err
		}
		row.ColdSaveMB = float64(cold.UploadedBytes) / float64(guestos.MiB)

		// Light steady-state browsing: every eighth persistent nym
		// loads one page, dirtying a small slice of its state.
		for i, m := range o.Members() {
			if i%32 == 0 && m.Nym() != nil && m.Nym().Model() == core.ModelPersistent {
				if _, err := m.Nym().Visit(p, "twitter.com"); err != nil {
					return err
				}
			}
		}
		steady, err := o.SaveSweep(p, "fleet-pw", destFor)
		if err != nil {
			return err
		}
		row.SteadySaveMB = float64(steady.UploadedBytes) / float64(guestos.MiB)
		row.SaveBaseMB = float64(steady.BaselineBytes) / float64(guestos.MiB)

		return o.StopAll(p)
	})
	if err != nil {
		return FleetScale{}, err
	}
	row.PeakRAMGiB = float64(o.PeakRAMBytes()) / float64(1<<30)
	row.RAMBudgetGiB = float64(o.RAMBudgetBytes()) / float64(1<<30)
	row.PeakCPUTasks = mgr.Host().CPU().PeakRunning()
	for _, m := range o.Members() {
		row.Restarts += m.Restarts()
	}
	return row, nil
}

// RenderFleetRampUp prints the experiment.
func RenderFleetRampUp(rows []FleetScale) string {
	var t table
	t.row("# Fleet ramp: N concurrent nyms on one 64 GiB / 16-core host")
	t.row("nyms", "ramp-s", "serial-est-s", "cold-save-MB", "steady-MB", "mono-MB", "peakRAM-GiB", "budget-GiB", "peakCPU", "restarts")
	for _, r := range rows {
		t.row(fmt.Sprint(r.Nyms), f1(r.TimeToRunning.Seconds()), f0(r.SerialEst.Seconds()),
			f1(r.ColdSaveMB), f1(r.SteadySaveMB), f1(r.SaveBaseMB),
			f1(r.PeakRAMGiB), f1(r.RAMBudgetGiB),
			fmt.Sprint(r.PeakCPUTasks), fmt.Sprint(r.Restarts))
	}
	if len(rows) > 0 {
		last := rows[len(rows)-1]
		t.row(fmt.Sprintf("# %d nyms running in %.0fs (serial would take ~%.0fs); steady-state saves ship %.1f MB vs %.1f MB monolithic",
			last.Nyms, last.TimeToRunning.Seconds(), last.SerialEst.Seconds(),
			last.SteadySaveMB, last.SaveBaseMB))
	}
	return t.String()
}

// FleetVaultDest is the per-member vault destination the fleet
// experiment checkpoints to: one pseudonymous account per nym on one
// provider.
func FleetVaultDest(m *fleet.Member) core.VaultDest {
	return core.VaultDest{
		Providers:       []string{"dropbin"},
		Account:         "acct-" + m.Name(),
		AccountPassword: "cloud-pw",
	}
}
