package experiments

import (
	"math"
	"testing"
	"time"

	"nymix/internal/cpusched"
	"nymix/internal/hypervisor"
)

// The vnet refactor (flat star -> NIC/Link/Router fabric) must be
// behaviourally invisible to every existing topology: same routes,
// same max-min rates, same completion times, same wire bytes. These
// constants were captured on the pre-refactor fabric (commit cd57d09)
// for the seeded FleetRampUp/FleetShards workloads; any drift means
// the fluid-flow model changed, not just its packaging.
//
// The capture ran with gob wire-type IDs pinned at init (see
// internal/nymstate and internal/vault): without the pin, archive
// byte sizes depend on which package gob-encoded first in the
// process, and the save-size columns wobble by a few bytes with test
// order.

func near(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestFabricRegressionFleetRampUp(t *testing.T) {
	rows, err := FleetRampUp(77, 12)
	if err != nil {
		t.Fatalf("FleetRampUp: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	got := rows[0]
	want := FleetScale{
		Nyms:          12,
		TimeToRunning: 49746374966 * time.Nanosecond,
		SerialEst:     230335058616 * time.Nanosecond,
		ColdSaveMB:    18.996952056884766,
		SteadySaveMB:  1.8501300811767578,
		SaveBaseMB:    20.80024242401123,
		PeakRAMGiB:    2.70648193359375,
		RAMBudgetGiB:  56.901544189080596,
		PeakCPUTasks:  24,
		Restarts:      0,
	}
	if got.Nyms != want.Nyms || got.TimeToRunning != want.TimeToRunning ||
		got.SerialEst != want.SerialEst || got.PeakCPUTasks != want.PeakCPUTasks ||
		got.Restarts != want.Restarts {
		t.Errorf("timing drifted:\n got %+v\nwant %+v", got, want)
	}
	for _, c := range []struct {
		name     string
		got, exp float64
	}{
		{"ColdSaveMB", got.ColdSaveMB, want.ColdSaveMB},
		{"SteadySaveMB", got.SteadySaveMB, want.SteadySaveMB},
		{"SaveBaseMB", got.SaveBaseMB, want.SaveBaseMB},
		{"PeakRAMGiB", got.PeakRAMGiB, want.PeakRAMGiB},
		{"RAMBudgetGiB", got.RAMBudgetGiB, want.RAMBudgetGiB},
	} {
		if !near(c.got, c.exp) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.exp)
		}
	}
}

func TestFabricRegressionFleetShards(t *testing.T) {
	hostCfg := hypervisor.Config{
		RAMBytes: 6 << 30,
		CPU:      cpusched.Config{Cores: 8, SMTFactor: 1.3},
	}
	rows, err := FleetShardsOn(5, 24, 2, hostCfg)
	if err != nil {
		t.Fatalf("FleetShardsOn: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	want := []ShardScale{
		{
			Policy:          rows[0].Policy, // policy labels are not under test
			Nyms:            24,
			Hosts:           2,
			TimeToRunning:   21796775460 * time.Nanosecond,
			PeakQueued:      0,
			Migrations:      0,
			MigrationWireMB: 0,
			PerHost:         []int{12, 12},
			MaxShare:        0.4586259138206863,
			MinShare:        0.4586259138206863,
			PeakRAMGiB:      2.70648193359375,
			Restarts:        0,
		},
		{
			Policy:          rows[1].Policy,
			Nyms:            24,
			Hosts:           2,
			TimeToRunning:   37152534017 * time.Nanosecond,
			PeakQueued:      0,
			Migrations:      2,
			MigrationWireMB: 25.329242706298828,
			PerHost:         []int{22, 2},
			MaxShare:        0.8408141753379248,
			MinShare:        0.0764376523034477,
			PeakRAMGiB:      3.595844268798828,
			Restarts:        0,
		},
	}
	for i, got := range rows {
		exp := want[i]
		if got.TimeToRunning != exp.TimeToRunning || got.PeakQueued != exp.PeakQueued ||
			got.Migrations != exp.Migrations || got.Restarts != exp.Restarts {
			t.Errorf("row %d timing drifted:\n got %+v\nwant %+v", i, got, exp)
		}
		if len(got.PerHost) != len(exp.PerHost) {
			t.Errorf("row %d PerHost = %v, want %v", i, got.PerHost, exp.PerHost)
		} else {
			for j := range exp.PerHost {
				if got.PerHost[j] != exp.PerHost[j] {
					t.Errorf("row %d PerHost = %v, want %v", i, got.PerHost, exp.PerHost)
					break
				}
			}
		}
		for _, c := range []struct {
			name     string
			got, exp float64
		}{
			{"MigrationWireMB", got.MigrationWireMB, exp.MigrationWireMB},
			{"MaxShare", got.MaxShare, exp.MaxShare},
			{"MinShare", got.MinShare, exp.MinShare},
			{"PeakRAMGiB", got.PeakRAMGiB, exp.PeakRAMGiB},
		} {
			if !near(c.got, c.exp) {
				t.Errorf("row %d %s = %v, want %v", i, c.name, c.got, c.exp)
			}
		}
	}
}
