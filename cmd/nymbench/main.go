// Command nymbench regenerates every table and figure from the
// paper's evaluation (section 5), plus the section 5.1 validation and
// the design ablations.
//
// Usage:
//
//	nymbench [-seed N] [-run all|fig3|fig4|fig5|fig6|fig7|table1|validation|ablations|vault|fleet|shards|elastic|sweeps|summary]
//	         [-nyms N] [-hosts N]   # shards sizing (default 1024 over 4); elastic sizing (default 96 over 2)
//	         [-rounds N]            # sweeps: steady-state rounds (default 8); -nyms sizes the sweep fleet (default 32)
package main

import (
	"flag"
	"fmt"
	"os"

	"nymix/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	run := flag.String("run", "all", "experiment to run: all, fig3, fig4, fig5, fig6, fig7, table1, validation, ablations, vault, fleet, shards, elastic, sweeps, summary")
	nyms := flag.Int("nyms", 0, "shards: fleet size (0 = 1024); elastic: burst size (0 = 96); sweeps: fleet size (0 = 32)")
	hosts := flag.Int("hosts", 0, "shards: pool size (0 = 4); elastic: initial pool (0 = 2)")
	rounds := flag.Int("rounds", 0, "sweeps: steady-state rounds (0 = 8)")
	flag.Parse()

	runners := map[string]func(uint64) (string, error){
		"fig3": func(s uint64) (string, error) {
			rows, err := experiments.Figure3(s)
			if err != nil {
				return "", err
			}
			return experiments.RenderFigure3(rows), nil
		},
		"fig4": func(s uint64) (string, error) {
			rows, err := experiments.Figure4(s)
			if err != nil {
				return "", err
			}
			return experiments.RenderFigure4(rows), nil
		},
		"fig5": func(s uint64) (string, error) {
			rows, err := experiments.Figure5(s)
			if err != nil {
				return "", err
			}
			return experiments.RenderFigure5(rows), nil
		},
		"fig6": func(s uint64) (string, error) {
			series, err := experiments.Figure6(s)
			if err != nil {
				return "", err
			}
			return experiments.RenderFigure6(series), nil
		},
		"fig7": func(s uint64) (string, error) {
			rows, err := experiments.Figure7(s)
			if err != nil {
				return "", err
			}
			return experiments.RenderFigure7(rows), nil
		},
		"table1": func(s uint64) (string, error) {
			rows, err := experiments.Table1(s)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable1(rows), nil
		},
		"validation": func(s uint64) (string, error) {
			report, err := experiments.Validation(s)
			if err != nil {
				return "", err
			}
			return experiments.RenderValidation(report), nil
		},
		"ablations": func(s uint64) (string, error) {
			out := experiments.RenderGuardExposure(experiments.AblationGuardExposure(s, 0.05), 0.05)
			stains, err := experiments.AblationStaining(s)
			if err != nil {
				return "", err
			}
			out += "\n" + experiments.RenderStaining(stains)
			linkage, err := experiments.AblationLinkage(s)
			if err != nil {
				return "", err
			}
			out += "\n" + experiments.RenderLinkage(linkage)
			out += "\n" + experiments.RenderBuddies(experiments.AblationBuddies(s, 4, 12), 4)
			return out, nil
		},
		"vault": func(s uint64) (string, error) {
			rows, err := experiments.VaultIncremental(s)
			if err != nil {
				return "", err
			}
			return experiments.RenderVaultIncremental(rows), nil
		},
		"fleet": func(s uint64) (string, error) {
			rows, err := experiments.FleetRampUp(s)
			if err != nil {
				return "", err
			}
			return experiments.RenderFleetRampUp(rows), nil
		},
		"shards": func(s uint64) (string, error) {
			rows, err := experiments.FleetShards(s, *nyms, *hosts)
			if err != nil {
				return "", err
			}
			return experiments.RenderFleetShards(rows), nil
		},
		"elastic": func(s uint64) (string, error) {
			res, err := experiments.Elastic(s, *nyms, *hosts)
			if err != nil {
				return "", err
			}
			return experiments.RenderElastic(res), nil
		},
		"sweeps": func(s uint64) (string, error) {
			res, err := experiments.SweepSteadyState(s, *nyms, *rounds)
			if err != nil {
				return "", err
			}
			return experiments.RenderSweepSteadyState(res), nil
		},
		"summary": func(s uint64) (string, error) {
			return summary(s)
		},
	}

	order := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table1", "validation", "ablations", "vault", "fleet", "shards", "elastic", "sweeps", "summary"}
	var selected []string
	if *run == "all" {
		selected = order
	} else if _, ok := runners[*run]; ok {
		selected = []string{*run}
	} else {
		fmt.Fprintf(os.Stderr, "nymbench: unknown experiment %q\n", *run)
		os.Exit(2)
	}
	for _, name := range selected {
		out, err := runners[name](*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nymbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}

// summary reproduces the abstract's headline numbers from the
// underlying experiments.
func summary(seed uint64) (string, error) {
	f3, err := experiments.Figure3(seed)
	if err != nil {
		return "", err
	}
	slope := (f3[len(f3)-1].UsedAfterMB - f3[0].UsedAfterMB) / float64(len(f3)-1)
	f7, err := experiments.Figure7(seed)
	if err != nil {
		return "", err
	}
	var freshTotal float64
	for _, r := range f7 {
		if r.Config == "fresh" {
			freshTotal = r.Total().Seconds()
		}
	}
	return fmt.Sprintf(
		"# Abstract claims\nper-nymbox memory: %.0f MB (paper: ~600 MB)\nfresh nymbox load: %.1f s (paper: 15-25 s)\n",
		slope, freshTotal), nil
}
