// Command nymbench regenerates every table and figure from the
// paper's evaluation (section 5), plus the section 5.1 validation and
// the design ablations.
//
// Usage:
//
//	nymbench [-seed N] [-run all|fig3|fig4|fig5|fig6|fig7|table1|validation|ablations|vault|fleet|shards|elastic|sweeps|partition|censorship|economy|summary]
//	         [-nyms N] [-hosts N]   # shards sizing (default 1024 over 4); elastic sizing (default 96 over 2)
//	         [-rounds N]            # sweeps: steady-state rounds (default 8); -nyms sizes the sweep fleet (default 32)
//	                                # economy: churn rounds (default 16); -nyms/-hosts size the pool (default 1024 over 4)
//	         [-json]                # also write BENCH_<run>.json (sim-time results + wall-clock and allocs)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nymix/internal/experiments"
)

// benchResult is one experiment's machine-readable record: the
// structured sim-time results the renderer prints, plus the real
// wall-clock and allocation cost of producing them. Sim-time results
// are deterministic per seed; wall_ms/allocs are the trajectory the
// bench file exists to track across revisions.
type benchResult struct {
	Name       string  `json:"name"`
	Seed       uint64  `json:"seed"`
	WallMS     float64 `json:"wall_ms"`
	Allocs     uint64  `json:"allocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Result     any     `json:"result"`
}

// benchFile is the top-level BENCH_<run>.json document.
type benchFile struct {
	Run       string        `json:"run"`
	Seed      uint64        `json:"seed"`
	GoVersion string        `json:"go_version"`
	Results   []benchResult `json:"results"`
}

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	run := flag.String("run", "all", "experiment to run: all, fig3, fig4, fig5, fig6, fig7, table1, validation, ablations, vault, fleet, shards, elastic, sweeps, partition, censorship, mixnet, economy, summary")
	nyms := flag.Int("nyms", 0, "shards: fleet size (0 = 1024); elastic: burst size (0 = 96); sweeps: fleet size (0 = 32)")
	hosts := flag.Int("hosts", 0, "shards: pool size (0 = 4); elastic: initial pool (0 = 2)")
	rounds := flag.Int("rounds", 0, "sweeps: steady-state rounds (0 = 8)")
	emitJSON := flag.Bool("json", false, "write BENCH_<run>.json next to the text output")
	flag.Parse()

	// Each runner returns the rendered text and the structured rows
	// behind it; the JSON emitter serialises the latter verbatim.
	runners := map[string]func(uint64) (string, any, error){
		"fig3": func(s uint64) (string, any, error) {
			rows, err := experiments.Figure3(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFigure3(rows), rows, nil
		},
		"fig4": func(s uint64) (string, any, error) {
			rows, err := experiments.Figure4(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFigure4(rows), rows, nil
		},
		"fig5": func(s uint64) (string, any, error) {
			rows, err := experiments.Figure5(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFigure5(rows), rows, nil
		},
		"fig6": func(s uint64) (string, any, error) {
			series, err := experiments.Figure6(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFigure6(series), series, nil
		},
		"fig7": func(s uint64) (string, any, error) {
			rows, err := experiments.Figure7(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFigure7(rows), rows, nil
		},
		"table1": func(s uint64) (string, any, error) {
			rows, err := experiments.Table1(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderTable1(rows), rows, nil
		},
		"validation": func(s uint64) (string, any, error) {
			report, err := experiments.Validation(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderValidation(report), report, nil
		},
		"ablations": func(s uint64) (string, any, error) {
			exposure := experiments.AblationGuardExposure(s, 0.05)
			out := experiments.RenderGuardExposure(exposure, 0.05)
			stains, err := experiments.AblationStaining(s)
			if err != nil {
				return "", nil, err
			}
			out += "\n" + experiments.RenderStaining(stains)
			linkage, err := experiments.AblationLinkage(s)
			if err != nil {
				return "", nil, err
			}
			out += "\n" + experiments.RenderLinkage(linkage)
			buddies := experiments.AblationBuddies(s, 4, 12)
			out += "\n" + experiments.RenderBuddies(buddies, 4)
			return out, map[string]any{
				"guard_exposure": exposure,
				"staining":       stains,
				"linkage":        linkage,
				"buddies":        buddies,
			}, nil
		},
		"vault": func(s uint64) (string, any, error) {
			rows, err := experiments.VaultIncremental(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderVaultIncremental(rows), rows, nil
		},
		"fleet": func(s uint64) (string, any, error) {
			rows, err := experiments.FleetRampUp(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFleetRampUp(rows), rows, nil
		},
		"shards": func(s uint64) (string, any, error) {
			rows, err := experiments.FleetShards(s, *nyms, *hosts)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFleetShards(rows), rows, nil
		},
		"elastic": func(s uint64) (string, any, error) {
			res, err := experiments.Elastic(s, *nyms, *hosts)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderElastic(res), res, nil
		},
		"sweeps": func(s uint64) (string, any, error) {
			res, err := experiments.SweepSteadyState(s, *nyms, *rounds)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderSweepSteadyState(res), res, nil
		},
		"partition": func(s uint64) (string, any, error) {
			res, err := experiments.Partition(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderPartition(res), res, nil
		},
		"censorship": func(s uint64) (string, any, error) {
			res, err := experiments.CensorshipDPI(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderCensorshipDPI(res), res, nil
		},
		"economy": func(s uint64) (string, any, error) {
			res, err := experiments.Economy(s, *nyms, *hosts, *rounds)
			if err != nil {
				return "", nil, err
			}
			// The economy run is also the gate: adaptive cadence must
			// strictly beat fixed-interval on total wire with staleness
			// p95 no worse, or the bench itself fails.
			if err := res.Gate(); err != nil {
				return "", nil, err
			}
			return experiments.RenderEconomy(res), res, nil
		},
		"mixnet": func(s uint64) (string, any, error) {
			res, err := experiments.MixnetFrontier(s)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderMixnetFrontier(res), res, nil
		},
		"summary": summary,
	}

	order := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table1", "validation", "ablations", "vault", "fleet", "shards", "elastic", "sweeps", "economy", "partition", "censorship", "mixnet", "summary"}
	var selected []string
	if *run == "all" {
		selected = order
	} else if _, ok := runners[*run]; ok {
		selected = []string{*run}
	} else {
		fmt.Fprintf(os.Stderr, "nymbench: unknown experiment %q\n", *run)
		os.Exit(2)
	}
	bench := benchFile{Run: *run, Seed: *seed, GoVersion: runtime.Version()}
	for _, name := range selected {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		out, result, err := runners[name](*seed)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nymbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		bench.Results = append(bench.Results, benchResult{
			Name:       name,
			Seed:       *seed,
			WallMS:     float64(wall.Microseconds()) / 1000,
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
			Result:     result,
		})
	}
	if *emitJSON {
		path := fmt.Sprintf("BENCH_%s.json", *run)
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "nymbench: marshal %s: %v\n", path, err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nymbench: write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nymbench: wrote %s\n", path)
	}
}

// summary reproduces the abstract's headline numbers from the
// underlying experiments.
func summary(seed uint64) (string, any, error) {
	f3, err := experiments.Figure3(seed)
	if err != nil {
		return "", nil, err
	}
	slope := (f3[len(f3)-1].UsedAfterMB - f3[0].UsedAfterMB) / float64(len(f3)-1)
	f7, err := experiments.Figure7(seed)
	if err != nil {
		return "", nil, err
	}
	var freshTotal float64
	for _, r := range f7 {
		if r.Config == "fresh" {
			freshTotal = r.Total().Seconds()
		}
	}
	res := struct {
		PerNymboxMemoryMB float64 `json:"per_nymbox_memory_mb"`
		FreshLoadSeconds  float64 `json:"fresh_load_seconds"`
	}{slope, freshTotal}
	return fmt.Sprintf(
		"# Abstract claims\nper-nymbox memory: %.0f MB (paper: ~600 MB)\nfresh nymbox load: %.1f s (paper: 15-25 s)\n",
		slope, freshTotal), res, nil
}
