// Command nymixctl drives a simulated Nymix session from the command
// line, mirroring the Nym Manager workflow of paper section 3.5:
// start a fresh nym, browse, store it encrypted to the cloud, load it
// back, move a sanitized file in from the installed OS, and tear
// everything down with a validation report.
//
// Because the whole system is a deterministic simulation, nymixctl
// runs a scripted session (the "demo") rather than an interactive
// shell; every step prints what the Nym Manager UI would show.
//
// Usage:
//
//	nymixctl [-seed N] [-anonymizer tor|dissent|incognito|sweet|tor-bridge|mixnet] demo
//	nymixctl [-seed N] [-nyms N] fleet     # ramp a fleet of concurrent nyms with supervision
//	nymixctl [-seed N] [-nyms N] cluster   # shard a fleet across hosts and live-migrate a nym
//	nymixctl [-seed N] [-nyms N] elastic   # autoscale the pool through a burst, preempt for a VIP, drain to the floor
//	nymixctl [-seed N] [-nyms N] sweeps    # run the checkpoint sweep scheduler; watch incremental sweeps converge
//	nymixctl [-seed N] [-nyms N] status    # exercise crash/sweep/migration machinery, dump the typed SLO report
//	nymixctl scrub <file.jpg>   # run the SaniVM scrubbing suite on a real file
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nymix/internal/cluster"
	"nymix/internal/core"
	"nymix/internal/cpusched"
	"nymix/internal/experiments"
	"nymix/internal/fleet"
	"nymix/internal/hypervisor"
	"nymix/internal/installedos"
	"nymix/internal/sanitize"
	"nymix/internal/sim"
	"nymix/internal/slo"
	"nymix/internal/webworld"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	anonymizer := flag.String("anonymizer", "tor", "anonymizer for the demo nym: tor, dissent, incognito, sweet, tor-bridge, mixnet")
	nyms := flag.Int("nyms", 24, "fleet size for the fleet command")
	flag.Parse()

	switch flag.Arg(0) {
	case "demo", "":
		if err := demo(*seed, *anonymizer); err != nil {
			fmt.Fprintf(os.Stderr, "nymixctl: %v\n", err)
			os.Exit(1)
		}
	case "fleet":
		if err := fleetDemo(*seed, *nyms); err != nil {
			fmt.Fprintf(os.Stderr, "nymixctl: %v\n", err)
			os.Exit(1)
		}
	case "cluster":
		if err := clusterDemo(*seed, *nyms); err != nil {
			fmt.Fprintf(os.Stderr, "nymixctl: %v\n", err)
			os.Exit(1)
		}
	case "elastic":
		if err := elasticDemo(*seed, *nyms); err != nil {
			fmt.Fprintf(os.Stderr, "nymixctl: %v\n", err)
			os.Exit(1)
		}
	case "sweeps":
		if err := sweepsDemo(*seed, *nyms); err != nil {
			fmt.Fprintf(os.Stderr, "nymixctl: %v\n", err)
			os.Exit(1)
		}
	case "status":
		if err := statusDemo(*seed, *nyms); err != nil {
			fmt.Fprintf(os.Stderr, "nymixctl: %v\n", err)
			os.Exit(1)
		}
	case "scrub":
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "nymixctl scrub: need a file path")
			os.Exit(2)
		}
		if err := scrubFile(flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "nymixctl: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "nymixctl: unknown command %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

// scrubFile runs the sanitize suite against a real on-disk file.
func scrubFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("analyzing %s (%d bytes)\n", path, len(data))
	for _, r := range sanitize.Analyze(path, data) {
		fmt.Println("  ", r)
	}
	res, err := sanitize.Scrub(path, data, sanitize.AllOptions)
	if err != nil {
		return err
	}
	fmt.Printf("applied: %v\n", res.Applied)
	out := path + ".scrubbed"
	if err := os.WriteFile(out, res.Data, 0o600); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes); residual risks: %d\n", out, len(res.Data), len(res.Residual))
	for _, r := range res.Residual {
		fmt.Println("  ", r)
	}
	return nil
}

// demo runs the full scripted session.
func demo(seed uint64, anonymizer string) error {
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.DefaultConfig())
	if err != nil {
		return err
	}
	say := func(format string, args ...interface{}) {
		fmt.Printf("[t=%8.1fs] "+format+"\n", append([]interface{}{eng.Now().Seconds()}, args...)...)
	}
	var demoErr error
	eng.Go("demo", func(p *sim.Proc) {
		dest := core.StoreDest{Provider: "dropbin", Account: "anon-9134", AccountPassword: "cloud-pw"}

		say("nymix booted; starting a fresh %s nym", anonymizer)
		nym, err := mgr.StartNym(p, "demo", core.Options{Model: core.ModelPersistent, Anonymizer: anonymizer})
		if err != nil {
			demoErr = err
			return
		}
		ph := nym.Phases()
		say("nymbox up: boot %.1fs, %s start %.1fs", ph.BootVM.Seconds(), anonymizer, ph.StartAnon.Seconds())

		if _, err := nym.Browser().Login(p, "twitter.com", "pseudonym-47", "tw-pw"); err != nil {
			demoErr = err
			return
		}
		say("logged in to twitter.com as pseudonym-47 (exit identity: %s)", nym.Anonymizer().ExitIdentity())
		if _, err := nym.Browser().Post(p, "twitter.com", "hello from a nymbox"); err != nil {
			demoErr = err
			return
		}
		say("posted; server-side cookie bound to this nym only")
		if cov, ok := nym.Anonymizer().(interface {
			CoverPackets() int64
			CoverWireBytes() int64
		}); ok {
			say("cover traffic so far: %d fixed-size frames, %.2f MB — the uplink looks identical when idle",
				cov.CoverPackets(), float64(cov.CoverWireBytes())/(1<<20))
		}

		// Sanitized transfer from the installed OS.
		photo := sanitize.MakeJPEG(sanitize.EXIFMeta{
			Make: "SmartPhoneCo", Model: "SP-7", Serial: "SN-0042",
			GPSLat: "41.2995N", GPSLon: "69.2401E",
		}, []byte("protest-photo-pixels"))
		installed, err := installedos.NewImage(installedos.Windows7, map[string][]byte{
			"/users/me/photos/protest.jpg": photo,
		})
		if err != nil {
			demoErr = err
			return
		}
		report, err := mgr.TransferFile(p, installed, "/users/me/photos/protest.jpg", nym, sanitize.AllOptions)
		if err != nil {
			demoErr = err
			return
		}
		say("SaniVM transfer: %d risk(s) found, applied %v, residual %d",
			len(report.RisksFound), report.Applied, len(report.Residual))
		if _, err := nym.Browser().Upload(p, "twitter.com", []byte("scrubbed")); err != nil {
			demoErr = err
			return
		}
		say("uploaded the scrubbed photo")

		size, err := mgr.StoreNym(p, nym, "nym-password", dest)
		if err != nil {
			demoErr = err
			return
		}
		say("nym stored to %s: %.1f MB encrypted", dest.Provider, float64(size)/(1<<20))
		if err := mgr.TerminateNym(p, nym); err != nil {
			demoErr = err
			return
		}
		say("nym terminated: memory wiped, host holds %d nyms", mgr.RunningNyms())

		restored, err := mgr.LoadNym(p, "demo", "nym-password", core.Options{Model: core.ModelPersistent, Anonymizer: anonymizer}, dest)
		if err != nil {
			demoErr = err
			return
		}
		say("nym restored from the cloud (ephemeral loader took %.1fs)", restored.Phases().EphemeralNym.Seconds())
		if _, err := restored.Browser().LoginSaved(p, "twitter.com"); err != nil {
			demoErr = err
			return
		}
		say("signed back in with stored credentials — no retyping, no habit to slip on")

		// NymVault: the content-addressed delta store. The first
		// checkpoint ships everything; after more browsing, the next
		// ships only changed chunks.
		vdest := core.VaultDest{Providers: []string{"dropbin", "gdrive"}, Account: "anon-9134", AccountPassword: "cloud-pw"}
		stats, err := mgr.StoreNymVault(p, restored, "nym-password", vdest)
		if err != nil {
			demoErr = err
			return
		}
		say("NymVault checkpoint: %d chunks, %.1f MB uploaded, replicated to %d providers",
			stats.TotalChunks, float64(stats.UploadedBytes)/(1<<20), len(vdest.Providers))
		if _, err := restored.Visit(p, "twitter.com"); err != nil {
			demoErr = err
			return
		}
		stats, err = mgr.StoreNymVault(p, restored, "nym-password", vdest)
		if err != nil {
			demoErr = err
			return
		}
		say("NymVault delta save after browsing: %d chunk uploads across the replicas (set of %d), %.2f MB uploaded (%.0f%% dedup; monolithic re-upload would be %.1f MB)",
			stats.NewChunks, stats.TotalChunks, float64(stats.UploadedBytes)/(1<<20),
			100*stats.DedupFrac(), float64(stats.BaselineWireBytes)/(1<<20))
		if err := mgr.TerminateNym(p, restored); err != nil {
			demoErr = err
			return
		}
		final, err := mgr.LoadNymVault(p, "demo", "nym-password", core.Options{Model: core.ModelPersistent, Anonymizer: anonymizer}, vdest)
		if err != nil {
			demoErr = err
			return
		}
		say("nym restored from the vault, every chunk authenticated against the sealed manifest")
		if err := mgr.TerminateNym(p, final); err != nil {
			demoErr = err
			return
		}
		say("session over; local media carries no nym state")
	})
	eng.Run()
	return demoErr
}

// clusterDemo shards a fleet over two simulated hosts, then walks the
// multi-host story: placement across the pool, a live vault-backed
// migration that preserves the nym's pseudonym identity end to end,
// and the reservation accounting on both sides of the move.
func clusterDemo(seed uint64, n int) error {
	if n < 4 {
		n = 4
	}
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	c, err := cluster.New(eng, world, experiments.ShardClusterConfig(2, cluster.LeastReserved{}))
	if err != nil {
		return err
	}
	say := func(format string, args ...interface{}) {
		fmt.Printf("[t=%8.1fs] "+format+"\n", append([]interface{}{eng.Now().Seconds()}, args...)...)
	}
	var demoErr error
	eng.Go("cluster-demo", func(p *sim.Proc) {
		hosts := c.Hosts()
		say("cluster up: %d hosts, %.1f GiB admissible each", len(hosts),
			float64(hosts[0].Fleet().RAMBudgetBytes())/(1<<30))
		if err := c.LaunchAll(experiments.FleetSpecs(n)); err != nil {
			demoErr = err
			return
		}
		if err := c.AwaitRunning(p, n); err != nil {
			demoErr = err
			return
		}
		st := c.Snapshot()
		say("%d nyms running, placed %v by %s", st.Running, st.PerHostRunning, "least-reserved")

		// Pick a persistent nym and give it identity worth preserving.
		var name string
		for _, h := range hosts {
			for _, m := range h.Fleet().Members() {
				if m.Nym() != nil && m.Nym().Model() == core.ModelPersistent {
					name = m.Name()
					break
				}
			}
			if name != "" {
				break
			}
		}
		src := c.HostOf(name)
		dst := hosts[0]
		if dst == src {
			dst = hosts[1]
		}
		if _, err := c.Member(name).Nym().Browser().Login(p, "twitter.com", "roamer", "pw"); err != nil {
			demoErr = err
			return
		}
		say("%s (on %s) logged in to twitter.com as roamer", name, src.Name())

		rep, err := c.MigrateNym(p, name, dst.Name())
		if err != nil {
			demoErr = err
			return
		}
		say("migrated %s: %s -> %s via the vault (%.1f MB cross-host wire)",
			name, rep.From, rep.To, float64(rep.WireBytes)/(1<<20))
		say("source %s now holds %d VMs and %.1f GiB reserved; %s runs %d nyms",
			src.Name(), src.Manager().Host().VMCount(),
			float64(src.Fleet().ReservedBytes())/(1<<30), dst.Name(), dst.Fleet().Running())
		m := c.Member(name)
		if _, err := m.Nym().Visit(p, "twitter.com"); err != nil {
			demoErr = err
			return
		}
		visits := world.Site("twitter.com").Visits()
		say("twitter sees cookie %q from the new host — same pseudonym, different machine",
			visits[len(visits)-1].CookieID)
		if cred, ok := m.Nym().Browser().Credentials("twitter.com"); ok {
			say("stored credentials (%s) crossed hosts inside the sealed checkpoint", cred.Account)
		}
		if err := c.StopAll(p); err != nil {
			demoErr = err
			return
		}
		say("cluster drained; %d migration(s) total, %.1f MB cross-host wire",
			c.Migrations(), float64(c.MigrationWireBytes())/(1<<20))
	})
	eng.Run()
	return demoErr
}

// elasticDemo walks the elastic-pool story on small (2 GiB) hosts so
// every decision lands in simulated minutes: a burst overflows the
// one-host floor and the autoscaler grows the pool; a System-class VIP
// launch hits the saturated ceiling and preemption sacrifices an idle
// ephemeral nym for it; the wave quiesces and the autoscaler drains
// the pool back to the floor, migrating the survivors through the
// vault.
func elasticDemo(seed uint64, n int) error {
	// A 2 GiB host holds ~6 density-tuned nymboxes; ceiling is 3 hosts.
	const perHost, ceiling = 6, 3
	if n < 8 {
		n = 8
	}
	if n > perHost*ceiling {
		n = perHost * ceiling
	}
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	cfg := experiments.ElasticClusterConfig(1, true)
	cfg.HostConfig = hypervisor.Config{RAMBytes: 2 << 30, CPU: cpusched.Config{Cores: 4, SMTFactor: 1.3}}
	c, err := cluster.New(eng, world, cfg)
	if err != nil {
		return err
	}
	say := func(format string, args ...interface{}) {
		fmt.Printf("[t=%8.1fs] "+format+"\n", append([]interface{}{eng.Now().Seconds()}, args...)...)
	}
	var demoErr error
	eng.Go("elastic-demo", func(p *sim.Proc) {
		say("pool up: %d host (floor %d, ceiling %d), %.1f GiB admissible",
			c.ActiveHosts(), 1, ceiling, float64(c.Hosts()[0].Fleet().RAMBudgetBytes())/(1<<30))
		say("launching a %d-nym burst (system > persistent > ephemeral classes)", n)
		if err := c.LaunchAll(experiments.ElasticSpecs(n)); err != nil {
			demoErr = err
			return
		}
		c.AwaitSettled(p)
		st := c.Snapshot()
		say("burst admitted: %d running on %d hosts (%d grown), placed %v",
			st.Running, st.ActiveHosts, st.GrowEvents, st.PerHostRunning)
		for _, ev := range c.ScaleLog() {
			say("  autoscaler: %s %s -> %d active hosts", ev.Kind, ev.Host, ev.Active)
		}

		// A VIP arrival at the ceiling: no host has room, growth is
		// capped, so the preemptor makes room by killing an idle
		// ephemeral nym (after its dwell).
		vip := fleet.Spec{
			Name:     "vip",
			Opts:     experiments.FleetNymOptions("vip", 0),
			Priority: fleet.PrioritySystem,
		}
		vip.Opts.Model = core.ModelPersistent
		vip.Opts.GuardSeed = "vip"
		say("VIP system-class launch arrives with the pool saturated at the ceiling")
		if err := c.Launch(vip); err != nil {
			demoErr = err
			return
		}
		for c.Member("vip") == nil || c.Member("vip").State() != fleet.StateRunning {
			c.AwaitSettled(p)
			if m := c.Member("vip"); m != nil && m.State() == fleet.StateFailed {
				demoErr = fmt.Errorf("vip launch failed: %v", m.LastErr())
				return
			}
		}
		st = c.Snapshot()
		say("VIP running on %s: preemption terminated %d ephemeral nym(s) to admit it",
			c.HostOf("vip").Name(), st.Preempted.Terminated)

		// The wave ends: ephemeral nyms terminate, the pool drains back
		// to the floor, migrating the persistent survivors via the vault.
		say("burst quiesces: stopping every ephemeral-class nym")
		preMoves, preWire := c.Migrations(), c.MigrationWireBytes()
		var stops []*sim.Future[struct{}]
		for _, h := range c.Hosts() {
			h := h
			for _, m := range h.Fleet().Members() {
				if m.State() != fleet.StateRunning || m.Priority() != fleet.PriorityEphemeral {
					continue
				}
				name := m.Name()
				stops = append(stops, eng.Go("stop-"+name, func(sp *sim.Proc) {
					h.Fleet().Stop(sp, name)
				}))
			}
		}
		for _, f := range stops {
			sim.Await(p, f)
		}
		c.AwaitSettled(p)
		st = c.Snapshot()
		say("drained to the floor: %d active host(s), %d retired; %d drain migration(s), %.1f MB vault wire",
			st.ActiveHosts, st.RetiredHosts, c.Migrations()-preMoves,
			float64(c.MigrationWireBytes()-preWire)/(1<<20))
		for _, h := range c.RetiredHosts() {
			say("  retired %s: %d VMs, %d reserved bytes (leak-free)",
				h.Name(), h.Manager().Host().VMCount(), h.Fleet().ReservedBytes())
		}
		say("%d persistent/system nyms still running, identities intact across %d total migrations",
			st.Running, st.Migrations)
	})
	eng.Run()
	return demoErr
}

// fleetDemo ramps a supervised fleet of concurrent nyms: parallel
// admission-controlled startup, an injected nymbox failure revived by
// the restart policy, a staggered NymVault save sweep over the
// persistent members, and a parallel teardown.
func fleetDemo(seed uint64, n int) error {
	if n < 2 {
		n = 2
	}
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, experiments.FleetHostConfig())
	if err != nil {
		return err
	}
	o := fleet.New(mgr, fleet.Config{Restart: fleet.DefaultRestartPolicy()})
	say := func(format string, args ...interface{}) {
		fmt.Printf("[t=%8.1fs] "+format+"\n", append([]interface{}{eng.Now().Seconds()}, args...)...)
	}
	var demoErr error
	eng.Go("fleet-demo", func(p *sim.Proc) {
		say("launching %d nyms (budget %.1f GiB RAM, %d-wide start gate)",
			n, float64(o.RAMBudgetBytes())/(1<<30), o.StartGateWidth())
		if _, err := o.LaunchAll(experiments.FleetSpecs(n)); err != nil {
			demoErr = err
			return
		}
		if err := o.AwaitRunning(p, n); err != nil {
			demoErr = err
			return
		}
		var slowest time.Duration
		for _, m := range o.Members() {
			if wait := m.RunningAt() - m.QueuedAt(); wait > slowest {
				slowest = wait
			}
		}
		say("fleet up: %d running, %.1f GiB reserved, peak host RAM %.1f GiB, slowest queue-to-running %.1fs",
			o.Running(), float64(o.ReservedBytes())/(1<<30), float64(o.PeakRAMBytes())/(1<<30),
			slowest.Seconds())

		victim := o.Members()[1]
		say("injecting a crash into %s", victim.Name())
		if err := o.FailNym(p, victim.Name(), nil); err != nil {
			demoErr = err
			return
		}
		if err := o.AwaitRunning(p, n); err != nil {
			demoErr = err
			return
		}
		say("%s revived by the restart policy (restart %d of %d); fleet back to %d running",
			victim.Name(), victim.Restarts(), o.Config().Restart.MaxRestarts, o.Running())

		stats, err := o.SaveSweep(p, "fleet-pw", experiments.FleetVaultDest)
		if err != nil {
			demoErr = err
			return
		}
		say("staggered save sweep: %d persistent nyms checkpointed, %.1f MB shipped over %.1fs",
			stats.Saves, float64(stats.UploadedBytes)/(1<<20), stats.Elapsed.Seconds())
		stats, err = o.SaveSweep(p, "fleet-pw", experiments.FleetVaultDest)
		if err != nil {
			demoErr = err
			return
		}
		say("steady-state sweep: %.2f MB (deltas only; monolithic re-upload would be %.1f MB)",
			float64(stats.UploadedBytes)/(1<<20), float64(stats.BaselineBytes)/(1<<20))

		if err := o.StopAll(p); err != nil {
			demoErr = err
			return
		}
		say("fleet stopped: %d nyms wiped, host holds %d VMs, %.1f GiB still reserved",
			o.CountState(fleet.StateStopped), mgr.Host().VMCount(), float64(o.ReservedBytes())/(1<<30))
	})
	eng.Run()
	return demoErr
}

// sweepsDemo runs the checkpoint sweep scheduler over an
// all-persistent fleet: a cold full checkpoint, then scheduled sweeps
// that skip clean nyms — sweeps with no browsing cost nothing, a
// browsed nym ships only its delta — converging to a small fraction
// of what saving everything every interval would cost.
func sweepsDemo(seed uint64, n int) error {
	if n < 4 {
		n = 4
	}
	const interval = 30 * time.Second
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, experiments.FleetHostConfig())
	if err != nil {
		return err
	}
	o := fleet.New(mgr, fleet.Config{Restart: fleet.DefaultRestartPolicy()})
	say := func(format string, args ...interface{}) {
		fmt.Printf("[t=%8.1fs] "+format+"\n", append([]interface{}{eng.Now().Seconds()}, args...)...)
	}
	var demoErr error
	eng.Go("sweeps-demo", func(p *sim.Proc) {
		say("launching %d persistent nyms", n)
		if _, err := o.LaunchAll(experiments.SweepSpecs(n)); err != nil {
			demoErr = err
			return
		}
		if err := o.AwaitRunning(p, n); err != nil {
			demoErr = err
			return
		}
		cold, err := o.SaveSweep(p, "fleet-pw", experiments.FleetVaultDest)
		if err != nil {
			demoErr = err
			return
		}
		say("cold full checkpoint: %d nyms, %.1f MB shipped", cold.Saves, float64(cold.UploadedBytes)/(1<<20))

		if err := o.StartSweeps(fleet.SweepConfig{
			Interval: interval, Password: "fleet-pw", DestFor: experiments.FleetVaultDest,
		}); err != nil {
			demoErr = err
			return
		}
		say("sweep scheduler started (interval %s, dirty-skip on)", interval)
		members := o.Members()
		for round := 0; round < 6; round++ {
			if round == 2 || round == 4 {
				m := members[round%n]
				if _, err := m.Nym().Visit(p, "twitter.com"); err != nil {
					demoErr = err
					return
				}
				d := m.Nym().DirtyState()
				say("%s browsed: %d RAM pages and %.1f KB of disk dirtied since its checkpoint",
					m.Name(), d.RAMPages, float64(d.DiskBytes)/(1<<10))
			}
			p.Sleep(interval)
			recs := o.SweepReport().Records
			if len(recs) > 0 {
				r := recs[len(recs)-1]
				say("sweep %d: %d eligible, %d saved, %d skipped clean (ratio %.2f), %.2f MB wire",
					len(recs), r.Eligible, r.Saves, r.Skipped, r.DirtySkipRatio(),
					float64(r.WireBytes())/(1<<20))
			}
		}
		o.StopSweeps()
		o.AwaitSweepsIdle(p)
		rep := o.SweepReport()
		say("scheduler stopped after %d sweeps: %d saves, %d clean skips (ratio %.2f), %.2f MB total wire, sweep p50 %.1fs / p95 %.1fs",
			rep.Sweeps, rep.Saves, rep.Skips, rep.DirtySkipRatio(),
			float64(rep.WireBytes())/(1<<20), rep.LatencyP50.Seconds(), rep.LatencyP95.Seconds())
		say("a save-everything sweep at the same cadence would have checkpointed %d nyms every %s; dirty tracking shipped deltas only",
			n, interval)
		if err := o.StopAll(p); err != nil {
			demoErr = err
			return
		}
		say("fleet stopped")
	})
	eng.Run()
	return demoErr
}

// statusDemo exercises the whole failure surface on a live cluster —
// a sharded ramp, scheduled sweeps, an injected nymbox crash, a
// cross-host migration, a region-severing partition during a second
// migration — then dumps the typed SLO report: every recorded failure
// bucketed by its registered nymerr code (zero unclassified), ramp
// and sweep latency percentiles, machinery rates, and checkpoint wire
// budgets.
func statusDemo(seed uint64, n int) error {
	if n < 4 {
		n = 4
	}
	eng := sim.NewEngine(seed)
	net, world := webworld.BuildDefault(eng)
	cfg := experiments.ShardClusterConfig(2, cluster.LeastReserved{})
	cfg.Fleet = fleet.Config{Restart: fleet.DefaultRestartPolicy()}
	// Hosts alternate between two hosting regions so a partition can
	// sever one side's provider path while the other keeps working.
	cfg.RegionFor = func(i int) string {
		if i%2 == 0 {
			return "east"
		}
		return "west"
	}
	c, err := cluster.New(eng, world, cfg)
	if err != nil {
		return err
	}
	say := func(format string, args ...interface{}) {
		fmt.Printf("[t=%8.1fs] "+format+"\n", append([]interface{}{eng.Now().Seconds()}, args...)...)
	}
	var demoErr error
	eng.Go("status-demo", func(p *sim.Proc) {
		say("ramping %d nyms across %d hosts", n, len(c.Hosts()))
		if err := c.LaunchAll(experiments.FleetSpecs(n)); err != nil {
			demoErr = err
			return
		}
		if err := c.AwaitRunning(p, n); err != nil {
			demoErr = err
			return
		}
		if err := c.StartSweeps(cluster.SweepConfig{Interval: 20 * time.Second, SaveAll: true}); err != nil {
			demoErr = err
			return
		}
		say("%d running; sweep coordinator started", c.Running())
		p.Sleep(45 * time.Second)

		// Inject a nymbox crash: the restart machinery revives the nym
		// and the failure lands in the report as fleet.crash_injected.
		var victim string
		for _, h := range c.Hosts() {
			for _, m := range h.Fleet().Members() {
				if m.State() == fleet.StateRunning {
					victim = m.Name()
					break
				}
			}
			if victim != "" {
				break
			}
		}
		if err := c.HostOf(victim).Fleet().FailNym(p, victim, nil); err != nil {
			demoErr = err
			return
		}
		say("injected a crash into %s; waiting for its restart", victim)
		if err := c.AwaitRunning(p, n); err != nil {
			demoErr = err
			return
		}

		// Move one nym across hosts through the vault.
		mover := ""
		for _, h := range c.Hosts() {
			for _, m := range h.Fleet().Members() {
				if m.State() == fleet.StateRunning && m.Nym() != nil && m.Nym().Model() == core.ModelPersistent {
					mover = m.Name()
					break
				}
			}
			if mover != "" {
				break
			}
		}
		dst := c.Hosts()[0]
		if c.HostOf(mover) == dst {
			dst = c.Hosts()[1]
		}
		if _, err := c.MigrateNym(p, mover, dst.Name()); err != nil {
			demoErr = err
			return
		}
		say("migrated %s to %s via the vault", mover, dst.Name())
		p.Sleep(30 * time.Second)

		// Now migrate it back while its new region is severed from the
		// provider backbone: the fresh save fails typed
		// (cloud.provider_unreachable at root), and the move recovers
		// from the last sweep checkpoint instead.
		src := c.HostOf(mover)
		srcRegion := src.Manager().Host().Node().Region()
		back := c.Hosts()[0]
		if back == src {
			back = c.Hosts()[1]
		}
		net.SeverRegions(srcRegion, webworld.CoreRegion)
		say("severed region %q from the providers; migrating %s back to %s", srcRegion, mover, back.Name())
		rep, err := c.MigrateNym(p, mover, back.Name())
		if err != nil {
			demoErr = err
			return
		}
		net.HealRegions(srcRegion, webworld.CoreRegion)
		say("migration recovered from the last vault checkpoint (retried=%v); region healed", rep.Retried)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		if err := c.StopAll(p); err != nil {
			demoErr = err
			return
		}
		say("cluster drained; rendering the SLO report")
	})
	eng.Run()
	if demoErr != nil {
		return demoErr
	}
	fmt.Print(slo.FromCluster(c).Render())
	return nil
}
