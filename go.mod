module nymix

go 1.22
